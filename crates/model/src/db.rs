//! A high-level similarity database: one trained model + a growing corpus
//! with precomputed embeddings.
//!
//! This is the deployment-shaped API (§VI-A: "for a trajectory database,
//! the trajectories embeddings only need to be computed once; when new
//! trajectory similarity query is conducted, we generate the embedding of
//! the new trajectory and perform search based on the distance of
//! embeddings").
//!
//! Queries go through one front door: [`SimilarityDb::search`] /
//! [`SimilarityDb::search_batch`] take a [`QueryTarget`] (ad-hoc
//! trajectory, raw embedding, or stored index) plus a [`Query`] describing
//! `k`, the shortlist width, and optional exact re-ranking. The historical
//! `knn*` methods survive as one-line forwards. When instrumented via
//! [`SimilarityDb::instrument`], every query records per-stage latencies
//! (embed / scan / re-rank) and counters into a
//! [`Registry`](neutraj_obs::Registry).
//!
//! At million-trajectory scale the exhaustive `O(N·d)` scan itself
//! becomes the bottleneck; [`SimilarityDb::build_ann_index`] trains an
//! IVF index (k-means coarse quantizer + inverted lists) over the stored
//! embeddings, and [`Query::shortlist_ann`] routes the scan through it —
//! probe the `nprobe` nearest cells, exactly score only their members.
//! Scored distances are bit-identical to the exhaustive scan's (only
//! recall is approximate), inserts keep the index in lockstep, and
//! [`SimilarityDb::save_ann_index`] / [`SimilarityDb::load_ann_index`]
//! persist it inside the standard CRC-sealed envelope.

use crate::backbone::NeuTrajModel;
use crate::loss::pair_similarity;
use crate::persist::{atomic_write, open_payload, seal_payload, PersistError};
use crate::quant::QuantizedStore;
use crate::query::{Query, QueryTarget};
use crate::search::EmbeddingStore;
use neutraj_cluster::{KMeans, KMeansParams};
use neutraj_index::{HnswIndex, HnswParams, IvfIndex};
use neutraj_measures::{Measure, Neighbor};
use neutraj_obs::{names, Counter, Gauge, Histogram, Registry};
use neutraj_trajectory::{TrajError, Trajectory};
use std::path::Path;

/// The concrete ANN index the database serves from: an inverted-file
/// index coarse-quantized by k-means.
pub type AnnIndex = IvfIndex<KMeans>;

/// Typed rejection of invalid serving-path input — the graceful-
/// degradation contract: bad input never panics the process and never
/// poisons the store (a NaN coordinate would otherwise flow into an
/// embedding and corrupt every later distance comparison).
#[derive(Debug)]
pub enum DbError {
    /// A trajectory failed validation (empty, or non-finite coordinate).
    InvalidTrajectory {
        /// The trajectory's id.
        id: u64,
        /// What the validation found.
        reason: TrajError,
    },
    /// A stored-item index beyond the corpus.
    UnknownIndex {
        /// The requested index.
        index: usize,
        /// Current corpus size.
        len: usize,
    },
    /// A raw query embedding with the wrong dimensionality or non-finite
    /// values.
    InvalidEmbedding(String),
    /// A query or index configuration that cannot be served: a zero ANN
    /// probe width, a re-rank shortlist narrower than `k`, an ANN query
    /// against a database with no index, or an index that does not match
    /// the corpus. Typed rather than a panic — misconfiguration is
    /// serving-path input, and it counts into `neutraj_db_rejects_total`
    /// like any other rejected request.
    InvalidConfig(String),
}

impl std::fmt::Display for DbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InvalidTrajectory { id, reason } => {
                write!(f, "invalid trajectory (id {id}): {reason}")
            }
            Self::UnknownIndex { index, len } => {
                write!(
                    f,
                    "no stored trajectory at index {index} (corpus size {len})"
                )
            }
            Self::InvalidEmbedding(msg) => write!(f, "invalid query embedding: {msg}"),
            Self::InvalidConfig(msg) => write!(f, "invalid query configuration: {msg}"),
        }
    }
}

impl std::error::Error for DbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::InvalidTrajectory { reason, .. } => Some(reason),
            _ => None,
        }
    }
}

/// Pre-resolved instrument handles for the serving path, following the
/// `neutraj_db_*` naming convention (see DESIGN.md, "Observability").
/// Resolved once at [`SimilarityDb::instrument`] time so the per-query
/// cost is a handful of atomic ops — no registry lock is ever taken on
/// the query path.
#[derive(Debug, Clone)]
pub struct DbMetrics {
    embed_seconds: Histogram,
    scan_seconds: Histogram,
    rerank_seconds: Histogram,
    queries_total: Counter,
    candidates_total: Counter,
    corpus_size: Gauge,
    rejects_total: Counter,
    ann_lists_probed: Counter,
    ann_candidates_scanned: Counter,
    ann_rerank_depth: Histogram,
    graph_hops: Counter,
    graph_candidates_scanned: Counter,
    graph_ef: Histogram,
    graph_rerank_depth: Histogram,
    quant_rows_scanned: Counter,
    quant_bytes_scanned: Counter,
}

impl DbMetrics {
    /// Resolves the serving-path instruments in `registry`.
    pub fn register(registry: &Registry) -> Self {
        Self {
            embed_seconds: registry.histogram(names::DB_EMBED_SECONDS),
            scan_seconds: registry.histogram(names::DB_SCAN_SECONDS),
            rerank_seconds: registry.histogram(names::DB_RERANK_SECONDS),
            queries_total: registry.counter(names::DB_QUERIES_TOTAL),
            candidates_total: registry.counter(names::DB_CANDIDATES_TOTAL),
            corpus_size: registry.gauge(names::DB_CORPUS_SIZE),
            rejects_total: registry.counter(names::DB_REJECTS_TOTAL),
            ann_lists_probed: registry.counter(names::ANN_LISTS_PROBED_TOTAL),
            ann_candidates_scanned: registry.counter(names::ANN_CANDIDATES_SCANNED_TOTAL),
            ann_rerank_depth: registry.histogram(names::ANN_RERANK_DEPTH),
            graph_hops: registry.counter(names::GRAPH_HOPS_TOTAL),
            graph_candidates_scanned: registry.counter(names::GRAPH_CANDIDATES_SCANNED_TOTAL),
            graph_ef: registry.histogram(names::GRAPH_EF),
            graph_rerank_depth: registry.histogram(names::GRAPH_RERANK_DEPTH),
            quant_rows_scanned: registry.counter(names::QUANT_ROWS_SCANNED_TOTAL),
            quant_bytes_scanned: registry.counter(names::QUANT_BYTES_SCANNED_TOTAL),
        }
    }
}

/// Configuration for [`SimilarityDb::build_ann_index`] — the IVF
/// coarse-quantizer training knobs, forwarded to the k-means fit.
#[derive(Debug, Clone)]
pub struct AnnParams {
    /// Number of inverted lists (k-means centroids). A good default is
    /// `≈ √N`; more lists mean a finer partition (fewer candidates per
    /// probe) but need a larger `nprobe` for the same recall.
    pub nlists: usize,
    /// Maximum Lloyd iterations for the quantizer fit.
    pub train_iters: usize,
    /// Train the quantizer on at most this many embeddings, sampled
    /// deterministically (`0` = all).
    pub train_sample: usize,
    /// Seed for sampling and initialization.
    pub seed: u64,
}

impl Default for AnnParams {
    fn default() -> Self {
        let k = KMeansParams::default();
        Self {
            nlists: k.k,
            train_iters: k.max_iters,
            train_sample: k.sample,
            seed: k.seed,
        }
    }
}

/// A corpus of trajectories indexed by a trained NeuTraj model.
///
/// Inserts cost one `O(L)` embedding; queries cost one embedding plus an
/// `O(N·d)` norm-trick scan through the backing [`EmbeddingStore`]
/// (batched queries share one GEMM per corpus block). The database owns
/// its trajectories so results can be re-ranked with an exact measure on
/// demand.
#[derive(Debug, Clone)]
pub struct SimilarityDb {
    model: NeuTrajModel,
    trajectories: Vec<Trajectory>,
    /// Embeddings + precomputed row norms for norm-trick scans.
    embeddings: EmbeddingStore,
    /// IVF shortlist index over the embeddings, kept in lockstep with the
    /// store by [`SimilarityDb::insert`] once built. `None` until
    /// [`SimilarityDb::build_ann_index`] (or a load) installs one.
    ann: Option<AnnIndex>,
    /// HNSW graph shortlist index over the embeddings, kept in lockstep
    /// with the store by [`SimilarityDb::insert`] once built. `None`
    /// until [`SimilarityDb::build_graph_index`] (or a load) installs
    /// one.
    graph: Option<HnswIndex>,
    /// Int8-quantized view of the embeddings for [`Query::quantized`]
    /// scans, kept in lockstep with the store by [`SimilarityDb::insert`]
    /// once built. `None` until [`SimilarityDb::build_quantized_store`]
    /// (or a load) installs one.
    quant: Option<QuantizedStore>,
    /// `None` (the default) records nothing; cloning an instrumented db
    /// shares the underlying instruments.
    metrics: Option<DbMetrics>,
}

impl SimilarityDb {
    /// Creates an empty database over a trained model.
    pub fn new(model: NeuTrajModel) -> Self {
        let store = EmbeddingStore::new(model.dim());
        Self {
            model,
            trajectories: Vec::new(),
            embeddings: store,
            ann: None,
            graph: None,
            quant: None,
            metrics: None,
        }
    }

    /// Creates a database and bulk-loads `corpus` with `threads` workers.
    ///
    /// Panics when the corpus contains an invalid trajectory — a bulk
    /// load is a programming input, unlike online [`SimilarityDb::insert`]
    /// traffic; use `insert_batch` on an empty db to handle invalid
    /// corpora gracefully.
    pub fn with_corpus(model: NeuTrajModel, corpus: Vec<Trajectory>, threads: usize) -> Self {
        let mut db = Self::new(model);
        db.insert_batch(corpus, threads)
            .unwrap_or_else(|e| panic!("invalid corpus: {e}"));
        db
    }

    /// Starts recording per-query metrics into `registry` (see
    /// [`DbMetrics`] for the instrument set). Queries on an
    /// un-instrumented db skip all recording at the cost of one branch
    /// per stage.
    pub fn instrument(&mut self, registry: &Registry) {
        let m = DbMetrics::register(registry);
        m.corpus_size.set(self.len() as f64);
        self.metrics = Some(m);
    }

    /// Stops recording metrics (already-recorded values stay in the
    /// registry they were written to).
    pub fn clear_instrumentation(&mut self) {
        self.metrics = None;
    }

    /// The underlying model.
    pub fn model(&self) -> &NeuTrajModel {
        &self.model
    }

    /// Number of stored trajectories.
    pub fn len(&self) -> usize {
        self.trajectories.len()
    }

    /// Returns `true` when the database is empty.
    pub fn is_empty(&self) -> bool {
        self.trajectories.is_empty()
    }

    /// Borrow a stored trajectory.
    pub fn get(&self, idx: usize) -> Option<&Trajectory> {
        self.trajectories.get(idx)
    }

    /// Embedding of stored item `idx`.
    pub fn embedding(&self, idx: usize) -> &[f64] {
        self.embeddings.get(idx)
    }

    /// The backing embedding store (for direct scan access).
    pub fn store(&self) -> &EmbeddingStore {
        &self.embeddings
    }

    /// Trains an IVF index over the current corpus snapshot: a k-means
    /// coarse quantizer fitted to the stored embeddings, then one bulk
    /// assignment pass filling the inverted lists. Replaces any existing
    /// index. Later [`SimilarityDb::insert`]s keep the index in lockstep
    /// (assign-to-nearest-centroid); rebuild when the corpus has grown or
    /// drifted enough that the old centroids partition it poorly.
    ///
    /// `nlists` is clamped to the number of distinct embeddings; zero
    /// `nlists` or an empty corpus is an [`DbError::InvalidConfig`].
    pub fn build_ann_index(&mut self, params: &AnnParams) -> Result<(), DbError> {
        if params.nlists == 0 {
            return Err(self.reject(DbError::InvalidConfig(
                "ann index needs at least one list (nlists == 0)".into(),
            )));
        }
        if self.is_empty() {
            return Err(self.reject(DbError::InvalidConfig(
                "cannot train an ann index over an empty corpus".into(),
            )));
        }
        let quantizer = KMeans::fit(
            self.embeddings.as_flat(),
            self.embeddings.dim(),
            &KMeansParams {
                k: params.nlists,
                max_iters: params.train_iters,
                sample: params.train_sample,
                seed: params.seed,
            },
        );
        self.ann = Some(IvfIndex::build(quantizer, self.embeddings.as_flat()));
        Ok(())
    }

    /// The current ANN index, when one is built or loaded.
    pub fn ann_index(&self) -> Option<&AnnIndex> {
        self.ann.as_ref()
    }

    /// Installs an externally built index after checking it matches the
    /// corpus (dimensionality and row count).
    pub fn set_ann_index(&mut self, index: AnnIndex) -> Result<(), DbError> {
        if index.dim() != self.embeddings.dim() || index.len() != self.len() {
            return Err(self.reject(DbError::InvalidConfig(format!(
                "ann index (dim {}, {} rows) does not match corpus (dim {}, {} rows)",
                index.dim(),
                index.len(),
                self.embeddings.dim(),
                self.len()
            ))));
        }
        self.ann = Some(index);
        Ok(())
    }

    /// Drops the ANN index; queries fall back to the exhaustive scan
    /// (ANN queries start failing with [`DbError::InvalidConfig`]).
    pub fn clear_ann_index(&mut self) {
        self.ann = None;
    }

    /// Persists the ANN index to `path` inside the standard sealed
    /// envelope (`NTFILE01` magic + length + CRC around the `NTIVF01`
    /// section), written atomically via a same-directory temp file.
    /// Errors when no index is built.
    pub fn save_ann_index<P: AsRef<Path>>(&self, path: P) -> Result<(), PersistError> {
        let ann = self.ann.as_ref().ok_or_else(|| {
            PersistError::Format("no ann index to save: call build_ann_index first".into())
        })?;
        atomic_write(path.as_ref(), &seal_payload(&ann.to_bytes()))
    }

    /// Loads and installs an ANN index written by
    /// [`SimilarityDb::save_ann_index`], verifying the envelope CRC, the
    /// section's structural invariants, and that the index matches the
    /// current corpus.
    pub fn load_ann_index<P: AsRef<Path>>(&mut self, path: P) -> Result<(), PersistError> {
        let data = std::fs::read(path.as_ref())?;
        let payload = open_payload(&data)?;
        let index =
            AnnIndex::from_bytes(payload).map_err(|e| PersistError::Corrupted(e.to_string()))?;
        self.set_ann_index(index)
            .map_err(|e| PersistError::Format(e.to_string()))
    }

    /// Builds a deterministic HNSW graph index over the current corpus
    /// snapshot for [`Query::shortlist_graph`] scans, with
    /// `threads`-way parallel construction rounds — the committed graph
    /// is **bit-identical for every thread count** (see the `hnsw`
    /// module docs in `neutraj-index`). Replaces any existing graph.
    /// Later [`SimilarityDb::insert`]s keep it in lockstep (the new row
    /// is assigned its hashed level and linked immediately).
    ///
    /// Invalid parameters or an empty corpus are a
    /// [`DbError::InvalidConfig`].
    pub fn build_graph_index(
        &mut self,
        params: &HnswParams,
        threads: usize,
    ) -> Result<(), DbError> {
        if let Err(e) = params.validate() {
            return Err(self.reject(DbError::InvalidConfig(e)));
        }
        if self.is_empty() {
            return Err(self.reject(DbError::InvalidConfig(
                "cannot build a graph index over an empty corpus".into(),
            )));
        }
        let store = &self.embeddings;
        let graph = HnswIndex::build(*params, store.len(), threads.max(1), &|a, b| {
            store.row_dist_sq(a, b)
        });
        self.graph = Some(graph);
        Ok(())
    }

    /// The current graph index, when one is built or loaded.
    pub fn graph_index(&self) -> Option<&HnswIndex> {
        self.graph.as_ref()
    }

    /// Installs an externally built graph index after checking it
    /// matches the corpus (row count — the graph stores no vectors, so
    /// dimensionality is the store's concern).
    pub fn set_graph_index(&mut self, graph: HnswIndex) -> Result<(), DbError> {
        if graph.len() != self.len() {
            return Err(self.reject(DbError::InvalidConfig(format!(
                "graph index ({} rows) does not match corpus ({} rows)",
                graph.len(),
                self.len()
            ))));
        }
        self.graph = Some(graph);
        Ok(())
    }

    /// Drops the graph index; graph queries start failing with
    /// [`DbError::InvalidConfig`] while other paths are unaffected.
    pub fn clear_graph_index(&mut self) {
        self.graph = None;
    }

    /// Persists the graph index to `path` inside the standard sealed
    /// envelope (`NTFILE01` magic + length + CRC around the `NTHNSW01`
    /// section), written atomically via a same-directory temp file.
    /// Errors when no graph is built.
    pub fn save_graph_index<P: AsRef<Path>>(&self, path: P) -> Result<(), PersistError> {
        let graph = self.graph.as_ref().ok_or_else(|| {
            PersistError::Format("no graph index to save: call build_graph_index first".into())
        })?;
        atomic_write(path.as_ref(), &seal_payload(&graph.to_bytes()))
    }

    /// Loads and installs a graph index written by
    /// [`SimilarityDb::save_graph_index`], verifying the envelope CRC,
    /// the section's structural invariants, and that the graph matches
    /// the current corpus.
    pub fn load_graph_index<P: AsRef<Path>>(&mut self, path: P) -> Result<(), PersistError> {
        let data = std::fs::read(path.as_ref())?;
        let payload = open_payload(&data)?;
        let graph =
            HnswIndex::from_bytes(payload).map_err(|e| PersistError::Corrupted(e.to_string()))?;
        self.set_graph_index(graph)
            .map_err(|e| PersistError::Format(e.to_string()))
    }

    /// Builds (or rebuilds) the int8-quantized view of the current
    /// corpus snapshot for [`Query::quantized`] scans. Later
    /// [`SimilarityDb::insert`]s keep it in lockstep (the new row is
    /// quantized on its own scale — no re-quantization of old rows).
    pub fn build_quantized_store(&mut self) {
        self.quant = Some(QuantizedStore::from_store(&self.embeddings));
    }

    /// The current quantized view, when one is built or loaded.
    pub fn quantized_store(&self) -> Option<&QuantizedStore> {
        self.quant.as_ref()
    }

    /// Installs an externally built quantized view after checking it
    /// matches the corpus (dimensionality and row count).
    pub fn set_quantized_store(&mut self, store: QuantizedStore) -> Result<(), DbError> {
        if store.dim() != self.embeddings.dim() || store.len() != self.len() {
            return Err(self.reject(DbError::InvalidConfig(format!(
                "quantized store (dim {}, {} rows) does not match corpus (dim {}, {} rows)",
                store.dim(),
                store.len(),
                self.embeddings.dim(),
                self.len()
            ))));
        }
        self.quant = Some(store);
        Ok(())
    }

    /// Drops the quantized view; [`Query::quantized`] queries start
    /// failing with [`DbError::InvalidConfig`].
    pub fn clear_quantized_store(&mut self) {
        self.quant = None;
    }

    /// Persists the quantized view to `path` inside the standard sealed
    /// envelope (`NTFILE01` magic + length + CRC around the `NTQ08`
    /// section), written atomically. Errors when no view is built.
    pub fn save_quantized_store<P: AsRef<Path>>(&self, path: P) -> Result<(), PersistError> {
        let q = self.quant.as_ref().ok_or_else(|| {
            PersistError::Format(
                "no quantized store to save: call build_quantized_store first".into(),
            )
        })?;
        q.save(path)
    }

    /// Loads and installs a quantized view written by
    /// [`SimilarityDb::save_quantized_store`], verifying the envelope
    /// CRC, the `NTQ08` structural invariants, and that the view matches
    /// the current corpus.
    pub fn load_quantized_store<P: AsRef<Path>>(&mut self, path: P) -> Result<(), PersistError> {
        let store = QuantizedStore::load(path)?;
        self.set_quantized_store(store)
            .map_err(|e| PersistError::Format(e.to_string()))
    }

    /// Counts a rejected input (graceful-degradation events are observable
    /// through `neutraj_db_rejects_total`).
    fn reject(&self, e: DbError) -> DbError {
        if let Some(m) = &self.metrics {
            m.rejects_total.inc();
        }
        e
    }

    /// Validates one trajectory at the serving trust boundary.
    fn check(&self, t: &Trajectory) -> Result<(), DbError> {
        t.validate()
            .map_err(|reason| self.reject(DbError::InvalidTrajectory { id: t.id, reason }))
    }

    /// Validates a query *configuration* at the same boundary: typed
    /// [`DbError::InvalidConfig`] (counted as a reject), never a panic.
    /// The database-independent invariants (`k == 0`, explicit shortlist
    /// narrower than `k`, `nprobe == 0`) live in [`Query::validate`] so
    /// the serving layer can apply the identical contract before
    /// queueing; the checks against *this* database's state (quantized
    /// view / ANN index actually built) follow here.
    fn check_query(&self, query: &Query) -> Result<(), DbError> {
        if let Err(reason) = query.validate() {
            return Err(self.reject(DbError::InvalidConfig(reason)));
        }
        if query.is_quantized() && self.quant.is_none() {
            return Err(self.reject(DbError::InvalidConfig(
                "quantized queries need the int8 view: call build_quantized_store \
                 (or load_quantized_store) first"
                    .into(),
            )));
        }
        if query.ann_nprobe().is_some() && self.ann.is_none() {
            return Err(self.reject(DbError::InvalidConfig(
                "shortlist_ann requires an ANN index: call build_ann_index \
                 (or load_ann_index) first"
                    .into(),
            )));
        }
        if query.graph_ef().is_some() && self.graph.is_none() {
            return Err(self.reject(DbError::InvalidConfig(
                "shortlist_graph requires a graph index: call build_graph_index \
                 (or load_graph_index) first"
                    .into(),
            )));
        }
        Ok(())
    }

    /// The embedding-space scan stage shared by every search path:
    /// exhaustive norm-trick GEMM, or the IVF/graph shortlist when the
    /// query asks for one (recording the shortlist work counters).
    /// Configuration has already passed [`Self::check_query`].
    fn scan_batch(&self, qrefs: &[&[f64]], fetch: usize, query: &Query) -> Vec<Vec<Neighbor>> {
        if query.is_quantized() {
            return self.scan_batch_quantized(qrefs, fetch, query);
        }
        if let Some(ef) = query.graph_ef() {
            let graph = self
                .graph
                .as_ref()
                .expect("check_query verified the graph exists");
            // The beam must be at least as wide as the fetch depth or
            // the shortlist could never fill it.
            let ef = ef.max(fetch);
            let (shorts, stats) = self.embeddings.knn_graph_batch(qrefs, fetch, graph, ef);
            if let Some(m) = &self.metrics {
                m.graph_hops.add(stats.hops as u64);
                m.graph_candidates_scanned
                    .add(stats.candidates_scanned as u64);
                m.graph_ef.observe(ef as f64);
                // Fraction of the corpus exactly scored per query — the
                // realized sub-linearity of the graph shortlist.
                let denom = (qrefs.len().max(1) * self.len().max(1)) as f64;
                m.graph_rerank_depth
                    .observe(stats.candidates_scanned as f64 / denom);
            }
            return shorts;
        }
        match query.ann_nprobe() {
            None => self.embeddings.knn_batch(qrefs, fetch),
            Some(nprobe) => {
                let ann = self
                    .ann
                    .as_ref()
                    .expect("check_query verified the index exists");
                let (shorts, stats) = self.embeddings.knn_ann_batch(qrefs, fetch, ann, nprobe);
                if let Some(m) = &self.metrics {
                    m.ann_lists_probed.add(stats.lists_probed as u64);
                    m.ann_candidates_scanned
                        .add(stats.candidates_scanned as u64);
                    // Fraction of the corpus exactly scored per query —
                    // the realized sub-linearity of the shortlist.
                    let denom = (qrefs.len().max(1) * self.len().max(1)) as f64;
                    m.ann_rerank_depth
                        .observe(stats.candidates_scanned as f64 / denom);
                }
                shorts
            }
        }
    }

    /// The [`Query::quantized`] scan stage: score rows through the int8
    /// view (exhaustively or over the IVF candidates), then exactly
    /// re-score the over-fetched shortlist against the f64 store —
    /// returned distances are exact; recall is what quantization trades.
    fn scan_batch_quantized(
        &self,
        qrefs: &[&[f64]],
        fetch: usize,
        query: &Query,
    ) -> Vec<Vec<Neighbor>> {
        let quant = self
            .quant
            .as_ref()
            .expect("check_query verified the quantized store exists");
        let (shorts, stats) = match query.ann_nprobe() {
            None => quant.knn_batch(&self.embeddings, qrefs, fetch),
            Some(nprobe) => {
                let ann = self
                    .ann
                    .as_ref()
                    .expect("check_query verified the index exists");
                if let Some(m) = &self.metrics {
                    m.ann_lists_probed
                        .add((qrefs.len() * nprobe.min(ann.nlists())) as u64);
                }
                quant.knn_ann_batch(&self.embeddings, qrefs, fetch, ann, nprobe)
            }
        };
        if let Some(m) = &self.metrics {
            m.quant_rows_scanned.add(stats.rows_scanned as u64);
            m.quant_bytes_scanned.add(stats.bytes_scanned as u64);
        }
        shorts
    }

    /// The embedding-space scan stage as a public seam: top-`fetch`
    /// neighbors for each already-embedded query, through whichever path
    /// `query` selects (exhaustive GEMM, IVF shortlist, quantized view),
    /// *without* the re-rank stage or [`Query::k`] truncation.
    ///
    /// This is what a sharded serving layer needs from each partition:
    /// each shard returns its local top-`fetch` list, the results are
    /// merged under the scan's `(dist, index)` total order, and any
    /// re-ranking happens once, globally. Because the per-row norm-trick
    /// score is a pure function of (query row, corpus row) — independent
    /// of batch size and GEMM blocking — a merged sharded scan is
    /// bit-identical to the unsharded scan over the concatenated corpus.
    ///
    /// Validates the query configuration and each embedding (dimension,
    /// finiteness) with the same typed rejections as
    /// [`SimilarityDb::search`].
    pub fn scan_embeddings(
        &self,
        qrefs: &[&[f64]],
        fetch: usize,
        query: &Query,
    ) -> Result<Vec<Vec<Neighbor>>, DbError> {
        self.check_query(query)?;
        for e in qrefs {
            if e.len() != self.model.dim() {
                return Err(self.reject(DbError::InvalidEmbedding(format!(
                    "dimension {} does not match model dimension {}",
                    e.len(),
                    self.model.dim()
                ))));
            }
            if let Some(k) = e.iter().position(|v| !v.is_finite()) {
                return Err(self.reject(DbError::InvalidEmbedding(format!(
                    "non-finite value at component {k}"
                ))));
            }
        }
        Ok(self.scan_batch(qrefs, fetch, query))
    }

    /// Inserts one trajectory; returns its index. Empty or non-finite
    /// trajectories are rejected *before* embedding, leaving the store
    /// untouched.
    pub fn insert(&mut self, t: Trajectory) -> Result<usize, DbError> {
        self.check(&t)?;
        let e = self.model.embed(&t);
        self.embeddings.push(&e);
        // Keep the ANN index in lockstep: assign the new row to its
        // nearest centroid (no retraining — rebuild for that).
        if let Some(ann) = &mut self.ann {
            ann.insert(&e);
        }
        // The graph index too: the new node gets its hashed level and
        // links immediately (a one-node construction round), so graph
        // queries see every inserted row — same liveness contract as
        // the IVF index.
        if let Some(graph) = &mut self.graph {
            let store = &self.embeddings;
            graph.insert(&|a, b| store.row_dist_sq(a, b));
        }
        // And the quantized view: the new row quantizes on its own scale.
        if let Some(q) = &mut self.quant {
            q.push(&e);
        }
        self.trajectories.push(t);
        if let Some(m) = &self.metrics {
            m.corpus_size.set(self.trajectories.len() as f64);
        }
        Ok(self.trajectories.len() - 1)
    }

    /// Inserts many trajectories, embedding them with the lockstep
    /// batched forward on `threads` workers. All-or-nothing: every
    /// trajectory is validated *first*, and a single invalid one rejects
    /// the whole batch with the store unchanged — a partially applied
    /// batch would leave callers guessing which indices exist.
    pub fn insert_batch(&mut self, ts: Vec<Trajectory>, threads: usize) -> Result<(), DbError> {
        for t in &ts {
            self.check(t)?;
        }
        let embs = self.model.embed_all(&ts, threads);
        for e in &embs {
            self.embeddings.push(e);
            if let Some(ann) = &mut self.ann {
                ann.insert(e);
            }
            if let Some(graph) = &mut self.graph {
                let store = &self.embeddings;
                graph.insert(&|a, b| store.row_dist_sq(a, b));
            }
            if let Some(q) = &mut self.quant {
                q.push(e);
            }
        }
        self.trajectories.extend(ts);
        if let Some(m) = &self.metrics {
            m.corpus_size.set(self.trajectories.len() as f64);
        }
        Ok(())
    }

    /// Answers one query: embeds the target if needed (a no-op for
    /// [`QueryTarget::Embedding`] / [`QueryTarget::Stored`]), runs the
    /// norm-trick scan, and — when [`Query::rerank`] is set — re-ranks
    /// the shortlist with the exact measure. A [`QueryTarget::Stored`]
    /// target never returns itself.
    ///
    /// Targets convert implicitly: `db.search(&trajectory, &q)`,
    /// `db.search(&embedding[..], &q)`, `db.search(stored_idx, &q)`.
    ///
    /// Invalid input — an empty/non-finite trajectory, an out-of-range
    /// stored index, a wrong-dimension or non-finite raw embedding —
    /// returns a typed [`DbError`] before any scan work (and counts into
    /// `neutraj_db_rejects_total` when instrumented).
    ///
    /// Panics when re-ranking is requested for a raw-embedding target
    /// (there is no trajectory to hand to the exact measure).
    pub fn search<'a>(
        &self,
        target: impl Into<QueryTarget<'a>>,
        query: &Query,
    ) -> Result<Vec<Neighbor>, DbError> {
        self.check_query(query)?;
        match target.into() {
            QueryTarget::Trajectory(t) => {
                self.check(t)?;
                let span = self.metrics.as_ref().map(|m| m.embed_seconds.start_timer());
                let qe = self.model.embed(t);
                drop(span);
                Ok(self.search_resolved(&qe, Some(t), None, query))
            }
            QueryTarget::Embedding(e) => {
                if e.len() != self.model.dim() {
                    return Err(self.reject(DbError::InvalidEmbedding(format!(
                        "dimension {} does not match model dimension {}",
                        e.len(),
                        self.model.dim()
                    ))));
                }
                if let Some(k) = e.iter().position(|v| !v.is_finite()) {
                    return Err(self.reject(DbError::InvalidEmbedding(format!(
                        "non-finite value at component {k}"
                    ))));
                }
                Ok(self.search_resolved(e, None, None, query))
            }
            QueryTarget::Stored(idx) => {
                if idx >= self.trajectories.len() {
                    return Err(self.reject(DbError::UnknownIndex {
                        index: idx,
                        len: self.trajectories.len(),
                    }));
                }
                Ok(self.search_resolved(
                    self.embeddings.get(idx),
                    Some(&self.trajectories[idx]),
                    Some(idx),
                    query,
                ))
            }
        }
    }

    /// Answers a whole batch of ad-hoc queries: one lockstep batched
    /// embed, then one norm-trick GEMM scan per corpus block shared by
    /// every query, then (optionally) per-query exact re-ranking. Each
    /// result is bit-identical to [`Self::search`] on that query.
    ///
    /// All-or-nothing on invalid input: every query trajectory is
    /// validated first, and one bad query rejects the batch.
    pub fn search_batch(
        &self,
        queries: &[Trajectory],
        query: &Query,
    ) -> Result<Vec<Vec<Neighbor>>, DbError> {
        self.check_query(query)?;
        for q in queries {
            self.check(q)?;
        }
        let m = self.metrics.as_ref();
        if let Some(m) = m {
            m.queries_total.add(queries.len() as u64);
        }
        let span = m.map(|m| m.embed_seconds.start_timer());
        let qembs = self.model.embed_batch(queries);
        drop(span);
        let qrefs: Vec<&[f64]> = qembs.iter().map(|e| e.as_slice()).collect();
        let fetch = match query.rerank_measure() {
            Some(_) => query.effective_shortlist(),
            None => query.k(),
        };
        let span = m.map(|m| m.scan_seconds.start_timer());
        let shorts = self.scan_batch(&qrefs, fetch, query);
        drop(span);
        if let Some(m) = m {
            m.candidates_total
                .add(shorts.iter().map(|s| s.len() as u64).sum());
        }
        match query.rerank_measure() {
            None => Ok(shorts),
            Some(measure) => {
                let span = m.map(|m| m.rerank_seconds.start_timer());
                let out = shorts
                    .into_iter()
                    .zip(queries)
                    .map(|(short, q)| self.rerank_shortlist(short, q, measure, query.k()))
                    .collect();
                drop(span);
                Ok(out)
            }
        }
    }

    /// The scan + (optional) re-rank stages, after the query embedding is
    /// in hand. `exclude` implements stored-target self-exclusion.
    fn search_resolved(
        &self,
        emb: &[f64],
        qtraj: Option<&Trajectory>,
        exclude: Option<usize>,
        query: &Query,
    ) -> Vec<Neighbor> {
        let m = self.metrics.as_ref();
        if let Some(m) = m {
            m.queries_total.inc();
        }
        let want = match query.rerank_measure() {
            Some(_) => query.effective_shortlist(),
            None => query.k(),
        };
        let fetch = want + usize::from(exclude.is_some());
        let span = m.map(|m| m.scan_seconds.start_timer());
        let mut short = self
            .scan_batch(&[emb], fetch, query)
            .pop()
            .expect("one query in, one result out");
        drop(span);
        if let Some(idx) = exclude {
            short.retain(|n| n.index != idx);
            short.truncate(want);
        }
        if let Some(m) = m {
            m.candidates_total.add(short.len() as u64);
        }
        match query.rerank_measure() {
            None => short,
            Some(measure) => {
                let qtraj = qtraj.expect(
                    "re-ranking needs a trajectory-backed target \
                     (QueryTarget::Trajectory or QueryTarget::Stored)",
                );
                let span = m.map(|m| m.rerank_seconds.start_timer());
                let out = self.rerank_shortlist(short, qtraj, measure, query.k());
                drop(span);
                out
            }
        }
    }

    /// Re-ranks an embedding-space shortlist by the exact `measure` on
    /// grid-rescaled coordinates (so values match the training scale),
    /// ties broken by index, truncated to `k`.
    fn rerank_shortlist(
        &self,
        short: Vec<Neighbor>,
        query: &Trajectory,
        measure: &dyn Measure,
        k: usize,
    ) -> Vec<Neighbor> {
        let grid = self.model.grid();
        let q = grid.rescale_trajectory(query);
        let mut out: Vec<Neighbor> = short
            .into_iter()
            .map(|n| Neighbor {
                index: n.index,
                dist: measure.dist(
                    q.points(),
                    grid.rescale_trajectory(&self.trajectories[n.index])
                        .points(),
                ),
            })
            .collect();
        out.sort_by(|a, b| {
            a.dist
                .partial_cmp(&b.dist)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.index.cmp(&b.index))
        });
        out.truncate(k);
        out
    }

    /// Top-k most similar stored trajectories to an ad-hoc `query`,
    /// ascending by embedding distance.
    ///
    /// Legacy forward to [`SimilarityDb::search`]; panics on invalid
    /// input — use `search` directly for typed rejection.
    #[deprecated(since = "0.1.0", note = "use `search(query, &Query::new(k))`")]
    pub fn knn(&self, query: &Trajectory, k: usize) -> Vec<Neighbor> {
        self.search(query, &Query::new(k))
            .unwrap_or_else(|e| panic!("knn: {e}"))
    }

    /// Top-k for a whole batch of ad-hoc queries; each result is
    /// bit-identical to [`Self::knn`] on that query. Panics on invalid
    /// input — use [`SimilarityDb::search_batch`] for typed rejection.
    #[deprecated(since = "0.1.0", note = "use `search_batch(queries, &Query::new(k))`")]
    pub fn knn_batch(&self, queries: &[Trajectory], k: usize) -> Vec<Vec<Neighbor>> {
        self.search_batch(queries, &Query::new(k))
            .unwrap_or_else(|e| panic!("knn_batch: {e}"))
    }

    /// Top-k by a precomputed query embedding. Panics on invalid input —
    /// use [`SimilarityDb::search`] for typed rejection.
    #[deprecated(since = "0.1.0", note = "use `search(&emb[..], &Query::new(k))`")]
    pub fn knn_embedding(&self, query_emb: &[f64], k: usize) -> Vec<Neighbor> {
        self.search(query_emb, &Query::new(k))
            .unwrap_or_else(|e| panic!("knn_embedding: {e}"))
    }

    /// Top-k of a *stored* item (excluding itself). Panics on an
    /// out-of-range index — use [`SimilarityDb::search`] for typed
    /// rejection.
    #[deprecated(since = "0.1.0", note = "use `search(idx, &Query::new(k))`")]
    pub fn knn_of(&self, idx: usize, k: usize) -> Vec<Neighbor> {
        self.search(idx, &Query::new(k))
            .unwrap_or_else(|e| panic!("knn_of: {e}"))
    }

    /// The paper's protocol: shortlist by embeddings, re-rank the
    /// shortlist by the exact `measure`, return top-k. Panics on invalid
    /// input — use [`SimilarityDb::search`] for typed rejection.
    #[deprecated(
        since = "0.1.0",
        note = "use `search(query, &Query::new(k).shortlist(s).rerank(&m))`"
    )]
    pub fn knn_reranked(
        &self,
        query: &Trajectory,
        measure: &dyn Measure,
        shortlist: usize,
        k: usize,
    ) -> Vec<Neighbor> {
        self.search(query, &Query::new(k).shortlist(shortlist).rerank(measure))
            .unwrap_or_else(|e| panic!("knn_reranked: {e}"))
    }

    /// Batched [`Self::knn_reranked`]. Panics on invalid input — use
    /// [`SimilarityDb::search_batch`] for typed rejection.
    #[deprecated(
        since = "0.1.0",
        note = "use `search_batch(queries, &Query::new(k).shortlist(s).rerank(&m))`"
    )]
    pub fn knn_reranked_batch(
        &self,
        queries: &[Trajectory],
        measure: &dyn Measure,
        shortlist: usize,
        k: usize,
    ) -> Vec<Vec<Neighbor>> {
        self.search_batch(queries, &Query::new(k).shortlist(shortlist).rerank(measure))
            .unwrap_or_else(|e| panic!("knn_reranked_batch: {e}"))
    }

    /// Learned similarity `g` between two *stored* items.
    pub fn pair_similarity(&self, i: usize, j: usize) -> f64 {
        pair_similarity(self.embedding(i), self.embedding(j))
    }

    /// Similarity join (the paper's motivating all-pairs workload, §I):
    /// all stored pairs `(i, j)` with exact distance ≤ `tau` under
    /// `measure`, found by **embedding-space candidate generation**
    /// (pairs with embedding distance ≤ `emb_radius`, via the norm-trick
    /// block GEMM of [`EmbeddingStore::pairs_within`]) followed by
    /// **exact verification** of the survivors only, parallelized across
    /// the available cores.
    ///
    /// Exact distances are computed in grid units (the training scale),
    /// so `tau` is in grid units too. The result is exact on the
    /// candidate set; recall depends on `emb_radius` — since the model is
    /// trained so `exp(-‖E_i−E_j‖) ≈ exp(-α·D_ij)`, a radius of
    /// `α·tau·slack` with `slack ≈ 2–3` captures nearly all true pairs at
    /// a fraction of the `O(N²·L²)` exact-join cost. Pairs are returned
    /// with their exact distance, `i < j`, sorted ascending by distance.
    pub fn similarity_join(
        &self,
        measure: &dyn Measure,
        tau: f64,
        emb_radius: f64,
    ) -> Vec<(usize, usize, f64)> {
        let grid = self.model.grid();
        let rescaled: Vec<Trajectory> = self
            .trajectories
            .iter()
            .map(|t| grid.rescale_trajectory(t))
            .collect();
        let candidates = self.embeddings.pairs_within(emb_radius);
        let verify = |chunk: &[(usize, usize)]| -> Vec<(usize, usize, f64)> {
            chunk
                .iter()
                .filter_map(|&(i, j)| {
                    let d = measure.dist(rescaled[i].points(), rescaled[j].points());
                    (d <= tau).then_some((i, j, d))
                })
                .collect()
        };
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let mut out = if threads <= 1 || candidates.len() < 1024 {
            verify(&candidates)
        } else {
            // Verified in parallel chunks, re-concatenated in chunk order,
            // so the pre-sort content is independent of the thread count.
            let chunk = candidates.len().div_ceil(threads);
            let mut parts: Vec<Vec<(usize, usize, f64)>> = Vec::new();
            std::thread::scope(|scope| {
                let handles: Vec<_> = candidates
                    .chunks(chunk)
                    .map(|c| scope.spawn(move || verify(c)))
                    .collect();
                for h in handles {
                    parts.push(h.join().expect("join verifier panicked"));
                }
            });
            parts.concat()
        };
        out.sort_by(|a, b| {
            a.2.partial_cmp(&b.2)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then((a.0, a.1).cmp(&(b.0, b.1)))
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TrainConfig, Trainer};
    use neutraj_measures::{DistanceMatrix, Hausdorff};
    use neutraj_trajectory::gen::PortoLikeGenerator;
    use neutraj_trajectory::Grid;

    fn trained_model_and_corpus() -> (NeuTrajModel, Vec<Trajectory>) {
        let ds = PortoLikeGenerator {
            num_trajectories: 40,
            max_len: 30,
            ..Default::default()
        }
        .generate(5);
        let trajs = ds.trajectories().to_vec();
        let grid = Grid::covering(&trajs, 100.0).unwrap();
        let rescaled: Vec<Trajectory> = trajs.iter().map(|t| grid.rescale_trajectory(t)).collect();
        let dist = DistanceMatrix::compute(&Hausdorff, &rescaled[..20]);
        let cfg = TrainConfig {
            dim: 8,
            epochs: 3,
            n_samples: 4,
            ..TrainConfig::neutraj()
        };
        let (model, _) = Trainer::new(cfg, grid).fit(&trajs[..20], &dist, |_| {});
        (model, trajs)
    }

    #[test]
    fn insert_and_query() {
        let (model, trajs) = trained_model_and_corpus();
        let mut db = SimilarityDb::new(model);
        assert!(db.is_empty());
        for t in &trajs[..30] {
            db.insert(t.clone()).unwrap();
        }
        assert_eq!(db.len(), 30);
        // Query with a stored trajectory: it must rank itself first.
        let res = db.search(&trajs[7], &Query::new(3)).unwrap();
        assert_eq!(res[0].index, 7);
        assert!(res[0].dist < 1e-12);
        // A stored target excludes self.
        let res = db.search(7usize, &Query::new(3)).unwrap();
        assert!(res.iter().all(|n| n.index != 7));
        assert_eq!(res.len(), 3);
    }

    #[test]
    #[allow(deprecated)]
    fn legacy_knn_forwards_still_match_the_query_api() {
        let (model, trajs) = trained_model_and_corpus();
        let db = SimilarityDb::with_corpus(model, trajs.clone(), 2);
        assert_eq!(
            db.knn(&trajs[7], 3),
            db.search(&trajs[7], &Query::new(3)).unwrap()
        );
        assert_eq!(db.knn_of(7, 3), db.search(7usize, &Query::new(3)).unwrap());
        let emb = db.embedding(4).to_vec();
        assert_eq!(
            db.knn_embedding(&emb, 3),
            db.search(&emb[..], &Query::new(3)).unwrap()
        );
        assert_eq!(
            db.knn_reranked(&trajs[3], &Hausdorff, 10, 5),
            db.search(&trajs[3], &Query::new(5).shortlist(10).rerank(&Hausdorff))
                .unwrap()
        );
        assert_eq!(
            db.knn_batch(&trajs[..3], 4),
            db.search_batch(&trajs[..3], &Query::new(4)).unwrap()
        );
        assert_eq!(
            db.knn_reranked_batch(&trajs[..3], &Hausdorff, 10, 4),
            db.search_batch(&trajs[..3], &Query::new(4).shortlist(10).rerank(&Hausdorff))
                .unwrap()
        );
    }

    #[test]
    fn batch_insert_matches_single_insert() {
        let (model, trajs) = trained_model_and_corpus();
        let mut a = SimilarityDb::new(model.clone());
        for t in &trajs {
            a.insert(t.clone()).unwrap();
        }
        let b = SimilarityDb::with_corpus(model, trajs.clone(), 4);
        assert_eq!(a.len(), b.len());
        for i in 0..a.len() {
            assert_eq!(a.embedding(i), b.embedding(i));
        }
    }

    #[test]
    fn search_targets_cover_the_knn_variants() {
        let (model, trajs) = trained_model_and_corpus();
        let db = SimilarityDb::with_corpus(model, trajs.clone(), 2);
        let q = Query::new(4);
        // Trajectory target == knn; embedding target == knn_embedding.
        let by_traj = db.search(&trajs[5], &q).unwrap();
        let emb = db.embedding(5).to_vec();
        let by_emb = db.search(&emb[..], &q).unwrap();
        assert_eq!(by_traj, by_emb);
        assert_eq!(by_traj[0].index, 5);
        // Stored target excludes self.
        let by_idx = db.search(5usize, &q).unwrap();
        assert!(by_idx.iter().all(|n| n.index != 5));
        assert_eq!(by_idx.len(), 4);
        // Reranked search orders by the exact measure.
        let rr = db
            .search(&trajs[5], &Query::new(4).shortlist(10).rerank(&Hausdorff))
            .unwrap();
        assert_eq!(rr[0].index, 5);
        for w in rr.windows(2) {
            assert!(w[0].dist <= w[1].dist);
        }
        // Stored + rerank: self stays excluded.
        let rr = db
            .search(5usize, &Query::new(4).shortlist(10).rerank(&Hausdorff))
            .unwrap();
        assert!(rr.iter().all(|n| n.index != 5));
    }

    #[test]
    fn scan_embeddings_is_the_search_scan_stage() {
        let (model, trajs) = trained_model_and_corpus();
        let db = SimilarityDb::with_corpus(model, trajs, 2);
        let qrefs = [db.embedding(1), db.embedding(2)];
        let got = db.scan_embeddings(&qrefs, 5, &Query::new(5)).unwrap();
        assert_eq!(got, db.store().knn_batch(&qrefs, 5));
        // The fetch width is explicit — the caller (a sharded merge)
        // controls it, not Query::k.
        let wide = db.scan_embeddings(&qrefs, 9, &Query::new(2)).unwrap();
        assert_eq!(wide[0].len(), 9);
        // Uniform over-fetch preserves prefixes under the (dist, index)
        // total order, so the narrow result is the wide one's prefix.
        assert_eq!(&wide[0][..5], &got[0][..]);
    }

    #[test]
    fn invalid_input_is_rejected_with_typed_errors() {
        use neutraj_trajectory::Point;
        let (model, trajs) = trained_model_and_corpus();
        let registry = Registry::new();
        let mut db = SimilarityDb::with_corpus(model, trajs.clone(), 2);
        db.instrument(&registry);
        let before = db.len();

        // Empty trajectory: rejected before touching the store.
        let empty = Trajectory::new_unchecked(900, vec![]);
        let err = db.insert(empty.clone()).unwrap_err();
        assert!(
            matches!(err, DbError::InvalidTrajectory { id: 900, .. }),
            "{err}"
        );
        // Non-finite coordinate: caught at the serving boundary before
        // any embedding work could smuggle a NaN into the store.
        let bad = trajs[0].map_points(|p| Point::new(p.x, f64::NAN));
        let err = db.insert(bad).unwrap_err();
        assert!(matches!(err, DbError::InvalidTrajectory { .. }), "{err}");

        // A batch with one bad entry is rejected atomically.
        let err = db
            .insert_batch(vec![trajs[1].clone(), empty.clone()], 2)
            .unwrap_err();
        assert!(matches!(err, DbError::InvalidTrajectory { id: 900, .. }));
        assert_eq!(db.len(), before, "failed insert mutated the store");

        // Query-side: empty trajectory, out-of-range index, bad embedding.
        assert!(db.search(&empty, &Query::new(3)).is_err());
        let err = db.search(db.len() + 5, &Query::new(3)).unwrap_err();
        assert!(matches!(err, DbError::UnknownIndex { .. }), "{err}");
        let short = vec![0.0; db.model().dim() - 1];
        let err = db.search(&short[..], &Query::new(3)).unwrap_err();
        assert!(matches!(err, DbError::InvalidEmbedding(_)), "{err}");
        let nan = vec![f64::NAN; db.model().dim()];
        assert!(db.search(&nan[..], &Query::new(3)).is_err());
        let err = db
            .search_batch(&[trajs[0].clone(), empty], &Query::new(3))
            .unwrap_err();
        assert!(matches!(err, DbError::InvalidTrajectory { .. }));

        // Every rejection above was counted.
        assert_eq!(registry.counter(names::DB_REJECTS_TOTAL).get(), 8);
        // Valid traffic still flows.
        assert!(db.insert(trajs[2].clone()).is_ok());
        assert_eq!(db.search(&trajs[0], &Query::new(3)).unwrap().len(), 3);
    }

    #[test]
    #[should_panic(expected = "trajectory-backed target")]
    fn rerank_of_raw_embedding_panics() {
        let (model, trajs) = trained_model_and_corpus();
        let db = SimilarityDb::with_corpus(model, trajs, 2);
        let emb = db.embedding(0).to_vec();
        let _ = db.search(&emb[..], &Query::new(2).rerank(&Hausdorff));
    }

    #[test]
    fn instrumented_search_records_stage_metrics() {
        let (model, trajs) = trained_model_and_corpus();
        let mut db = SimilarityDb::with_corpus(model, trajs.clone(), 2);
        let registry = Registry::new();
        db.instrument(&registry);
        let _ = db.search(&trajs[0], &Query::new(3));
        let _ = db.search_batch(&trajs[..4], &Query::new(3).shortlist(8).rerank(&Hausdorff));
        let report = registry.snapshot();
        let counter = |name: &str| {
            report
                .counters
                .iter()
                .find(|(n, _)| n == name)
                .unwrap_or_else(|| panic!("missing {name}"))
                .1
        };
        assert_eq!(counter("neutraj_db_queries_total"), 5);
        assert_eq!(counter("neutraj_db_candidates_total"), 3 + 4 * 8);
        let gauge = report
            .gauges
            .iter()
            .find(|(n, _)| n == "neutraj_db_corpus_size")
            .expect("corpus size gauge")
            .1;
        assert_eq!(gauge, trajs.len() as f64);
        let hist = |name: &str| {
            report
                .histograms
                .iter()
                .find(|h| h.name == name)
                .unwrap_or_else(|| panic!("missing {name}"))
        };
        assert_eq!(hist("neutraj_db_embed_seconds").count, 2);
        assert_eq!(hist("neutraj_db_scan_seconds").count, 2);
        assert_eq!(hist("neutraj_db_rerank_seconds").count, 1);
        // Instrumentation must not change results.
        let mut plain = db.clone();
        plain.clear_instrumentation();
        assert_eq!(
            db.search(&trajs[1], &Query::new(5)).unwrap(),
            plain.search(&trajs[1], &Query::new(5)).unwrap()
        );
    }

    #[test]
    fn rerank_orders_by_exact_distance() {
        let (model, trajs) = trained_model_and_corpus();
        let db = SimilarityDb::with_corpus(model, trajs.clone(), 2);
        let res = db
            .search(&trajs[3], &Query::new(5).shortlist(10).rerank(&Hausdorff))
            .unwrap();
        assert_eq!(res.len(), 5);
        assert_eq!(res[0].index, 3); // exact self-distance 0
        for w in res.windows(2) {
            assert!(w[0].dist <= w[1].dist);
        }
    }

    #[test]
    fn similarity_join_is_sound_and_recalls_with_wide_radius() {
        let (model, trajs) = trained_model_and_corpus();
        let db = SimilarityDb::with_corpus(model, trajs.clone(), 2);
        // Exact reference join.
        let grid = db.model().grid().clone();
        let rescaled: Vec<Trajectory> = trajs.iter().map(|t| grid.rescale_trajectory(t)).collect();
        let tau = 3.0; // grid units
        let mut truth = Vec::new();
        for i in 0..trajs.len() {
            for j in i + 1..trajs.len() {
                let d = Hausdorff.dist(rescaled[i].points(), rescaled[j].points());
                if d <= tau {
                    truth.push((i, j));
                }
            }
        }
        // Infinite radius ⇒ the join must equal the exact join.
        let full = db.similarity_join(&Hausdorff, tau, f64::INFINITY);
        let full_pairs: Vec<(usize, usize)> = full.iter().map(|&(i, j, _)| (i, j)).collect();
        let mut sorted_truth = truth.clone();
        sorted_truth.sort_unstable();
        let mut sorted_full = full_pairs.clone();
        sorted_full.sort_unstable();
        assert_eq!(sorted_full, sorted_truth);
        // Soundness at any radius: results ⊆ exact join, distances ≤ tau,
        // ascending order.
        let pruned = db.similarity_join(&Hausdorff, tau, 1.0);
        for w in pruned.windows(2) {
            assert!(w[0].2 <= w[1].2);
        }
        for &(i, j, d) in &pruned {
            assert!(d <= tau);
            assert!(sorted_truth.binary_search(&(i, j)).is_ok());
        }
        assert!(pruned.len() <= full.len());
    }

    #[test]
    fn ann_query_matches_exhaustive_at_full_probe_and_stays_synced() {
        let (model, trajs) = trained_model_and_corpus();
        let mut db = SimilarityDb::with_corpus(model, trajs[..30].to_vec(), 2);
        db.build_ann_index(&AnnParams {
            nlists: 5,
            ..Default::default()
        })
        .unwrap();
        let nlists = db.ann_index().unwrap().nlists();
        // Probing every list is the exhaustive scan, bit for bit — for
        // every target flavor.
        let exhaustive = db.search(&trajs[3], &Query::new(6)).unwrap();
        let ann = db
            .search(&trajs[3], &Query::new(6).shortlist_ann(nlists))
            .unwrap();
        assert_eq!(exhaustive, ann);
        let by_idx = db.search(3usize, &Query::new(6)).unwrap();
        let by_idx_ann = db
            .search(3usize, &Query::new(6).shortlist_ann(nlists))
            .unwrap();
        assert_eq!(by_idx, by_idx_ann);
        let batch = db.search_batch(&trajs[..4], &Query::new(6)).unwrap();
        let batch_ann = db
            .search_batch(&trajs[..4], &Query::new(6).shortlist_ann(nlists))
            .unwrap();
        assert_eq!(batch, batch_ann);
        // nprobe = 1 still finds the stored item itself (its embedding
        // sits in the cell the probe lands in).
        let res = db
            .search(&trajs[3], &Query::new(1).shortlist_ann(1))
            .unwrap();
        assert_eq!(res[0].index, 3);
        // ANN composes with exact re-ranking.
        let rr = db
            .search(
                &trajs[3],
                &Query::new(3)
                    .shortlist(10)
                    .shortlist_ann(nlists)
                    .rerank(&Hausdorff),
            )
            .unwrap();
        assert_eq!(rr[0].index, 3);
        // Inserts keep the index in lockstep (assign-to-nearest), so ANN
        // queries keep working and can return the new item.
        let idx = db.insert(trajs[35].clone()).unwrap();
        assert_eq!(db.ann_index().unwrap().len(), db.len());
        let res = db
            .search(&trajs[35], &Query::new(1).shortlist_ann(nlists))
            .unwrap();
        assert_eq!(res[0].index, idx);
        // Rebuild equals the grown index only after retraining; but a
        // bulk rebuild over the same corpus must still satisfy ANN ==
        // exhaustive at full probe.
        db.build_ann_index(&AnnParams {
            nlists: 5,
            ..Default::default()
        })
        .unwrap();
        let nlists = db.ann_index().unwrap().nlists();
        assert_eq!(
            db.search(&trajs[8], &Query::new(5)).unwrap(),
            db.search(&trajs[8], &Query::new(5).shortlist_ann(nlists))
                .unwrap()
        );
    }

    #[test]
    fn invalid_query_configs_are_rejected_with_typed_errors() {
        let (model, trajs) = trained_model_and_corpus();
        let registry = Registry::new();
        let mut db = SimilarityDb::with_corpus(model, trajs.clone(), 2);
        db.instrument(&registry);

        // ANN query without an index.
        let err = db
            .search(&trajs[0], &Query::new(3).shortlist_ann(4))
            .unwrap_err();
        assert!(matches!(err, DbError::InvalidConfig(_)), "{err}");

        db.build_ann_index(&AnnParams {
            nlists: 4,
            ..Default::default()
        })
        .unwrap();

        // nprobe == 0.
        let err = db
            .search(&trajs[0], &Query::new(3).shortlist_ann(0))
            .unwrap_err();
        assert!(matches!(err, DbError::InvalidConfig(_)), "{err}");
        let err = db
            .search_batch(&trajs[..2], &Query::new(3).shortlist_ann(0))
            .unwrap_err();
        assert!(matches!(err, DbError::InvalidConfig(_)), "{err}");

        // Re-rank shortlist narrower than k.
        let err = db
            .search(&trajs[0], &Query::new(10).shortlist(4).rerank(&Hausdorff))
            .unwrap_err();
        assert!(matches!(err, DbError::InvalidConfig(_)), "{err}");
        let err = db
            .search_batch(&trajs[..2], &Query::new(10).shortlist(4).rerank(&Hausdorff))
            .unwrap_err();
        assert!(matches!(err, DbError::InvalidConfig(_)), "{err}");

        // An explicit shortlist narrower than k is a misconfiguration
        // even without a re-rank (it was silently ignored historically).
        let err = db
            .search(&trajs[0], &Query::new(10).shortlist(4))
            .unwrap_err();
        assert!(matches!(err, DbError::InvalidConfig(_)), "{err}");

        // k == 0 is a typed rejection, not a silent empty result.
        let err = db.search(&trajs[0], &Query::new(0)).unwrap_err();
        assert!(matches!(err, DbError::InvalidConfig(_)), "{err}");
        let err = db.search_batch(&trajs[..2], &Query::new(0)).unwrap_err();
        assert!(matches!(err, DbError::InvalidConfig(_)), "{err}");
        let err = db
            .scan_embeddings(&[db.embedding(0)], 3, &Query::new(0))
            .unwrap_err();
        assert!(matches!(err, DbError::InvalidConfig(_)), "{err}");

        // The scan seam also validates raw embeddings.
        let short = vec![0.0; db.model().dim() - 1];
        let err = db
            .scan_embeddings(&[&short[..]], 3, &Query::new(3))
            .unwrap_err();
        assert!(matches!(err, DbError::InvalidEmbedding(_)), "{err}");
        let nan = vec![f64::NAN; db.model().dim()];
        let err = db
            .scan_embeddings(&[&nan[..]], 3, &Query::new(3))
            .unwrap_err();
        assert!(matches!(err, DbError::InvalidEmbedding(_)), "{err}");

        // Build-time misconfiguration.
        let err = db
            .build_ann_index(&AnnParams {
                nlists: 0,
                ..Default::default()
            })
            .unwrap_err();
        assert!(matches!(err, DbError::InvalidConfig(_)), "{err}");
        let mut empty = SimilarityDb::new(db.model().clone());
        let err = empty.build_ann_index(&AnnParams::default()).unwrap_err();
        assert!(matches!(err, DbError::InvalidConfig(_)), "{err}");

        // A foreign index that doesn't match the corpus.
        let tiny = {
            let q = KMeans::from_centroids(db.model().dim(), vec![0.0; db.model().dim()]);
            IvfIndex::from_parts(q, vec![Vec::new()])
        };
        let err = db.set_ann_index(tiny).unwrap_err();
        assert!(matches!(err, DbError::InvalidConfig(_)), "{err}");

        // Every instrumented rejection above was counted (the empty-db
        // one went to an uninstrumented db).
        assert_eq!(registry.counter(names::DB_REJECTS_TOTAL).get(), 13);
        // Valid ANN traffic still flows.
        assert!(db
            .search(&trajs[0], &Query::new(3).shortlist_ann(2))
            .is_ok());
    }

    #[test]
    fn ann_metrics_record_probe_work() {
        let (model, trajs) = trained_model_and_corpus();
        let registry = Registry::new();
        let mut db = SimilarityDb::with_corpus(model, trajs.clone(), 2);
        db.build_ann_index(&AnnParams {
            nlists: 5,
            ..Default::default()
        })
        .unwrap();
        db.instrument(&registry);
        let nlists = db.ann_index().unwrap().nlists();
        let _ = db
            .search_batch(&trajs[..3], &Query::new(4).shortlist_ann(2))
            .unwrap();
        let _ = db
            .search(&trajs[0], &Query::new(4).shortlist_ann(nlists))
            .unwrap();
        let report = registry.snapshot();
        let counter = |name: &str| {
            report
                .counters
                .iter()
                .find(|(n, _)| n == name)
                .unwrap_or_else(|| panic!("missing {name}"))
                .1
        };
        assert_eq!(
            counter(names::ANN_LISTS_PROBED_TOTAL),
            (3 * 2 + nlists) as u64
        );
        // Full probe scans the whole corpus; partial probes scan a
        // nonempty subset.
        let scanned = counter(names::ANN_CANDIDATES_SCANNED_TOTAL);
        assert!(scanned >= db.len() as u64, "scanned {scanned}");
        let depth = report
            .histograms
            .iter()
            .find(|h| h.name == names::ANN_RERANK_DEPTH)
            .expect("rerank depth histogram");
        assert_eq!(depth.count, 2);
        // Exhaustive queries record no ANN work.
        let before = counter(names::ANN_LISTS_PROBED_TOTAL);
        let _ = db.search(&trajs[1], &Query::new(4)).unwrap();
        let report = registry.snapshot();
        let after = report
            .counters
            .iter()
            .find(|(n, _)| n == names::ANN_LISTS_PROBED_TOTAL)
            .unwrap()
            .1;
        assert_eq!(before, after);
    }

    #[test]
    fn ann_index_persists_through_the_sealed_envelope() {
        let (model, trajs) = trained_model_and_corpus();
        let mut db = SimilarityDb::with_corpus(model, trajs.clone(), 2);
        let dir = std::env::temp_dir().join(format!("neutraj-ann-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corpus.ivf");

        // Nothing to save yet.
        assert!(db.save_ann_index(&path).is_err());
        db.build_ann_index(&AnnParams {
            nlists: 4,
            ..Default::default()
        })
        .unwrap();
        db.save_ann_index(&path).unwrap();
        let saved = db.ann_index().unwrap().clone();
        db.clear_ann_index();
        assert!(db.ann_index().is_none());
        db.load_ann_index(&path).unwrap();
        assert_eq!(db.ann_index().unwrap(), &saved);

        // A flipped payload byte fails the envelope CRC.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        let bad = dir.join("corrupt.ivf");
        std::fs::write(&bad, &bytes).unwrap();
        assert!(db.load_ann_index(&bad).is_err());
        // The db keeps serving from the previously loaded index.
        assert!(db.ann_index().is_some());

        // An index for a different corpus is rejected at load time.
        let mut small = SimilarityDb::with_corpus(db.model().clone(), trajs[..10].to_vec(), 2);
        small
            .build_ann_index(&AnnParams {
                nlists: 3,
                ..Default::default()
            })
            .unwrap();
        let other = dir.join("other.ivf");
        small.save_ann_index(&other).unwrap();
        assert!(db.load_ann_index(&other).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn quantized_query_matches_exhaustive_on_small_corpus() {
        let (model, trajs) = trained_model_and_corpus();
        let registry = Registry::new();
        let mut db = SimilarityDb::with_corpus(model, trajs[..30].to_vec(), 2);
        db.instrument(&registry);

        // Without the int8 view the query is a typed config rejection.
        let err = db
            .search(&trajs[3], &Query::new(6).quantized())
            .unwrap_err();
        assert!(matches!(err, DbError::InvalidConfig(_)), "{err}");

        db.build_quantized_store();
        // At 30 rows the over-fetched shortlist covers the whole corpus,
        // so the exact rerank makes quantized == exhaustive, bit for bit,
        // for every target flavor.
        let q = Query::new(6);
        let qq = Query::new(6).quantized();
        assert_eq!(
            db.search(&trajs[3], &q).unwrap(),
            db.search(&trajs[3], &qq).unwrap()
        );
        assert_eq!(
            db.search(3usize, &q).unwrap(),
            db.search(3usize, &qq).unwrap()
        );
        assert_eq!(
            db.search_batch(&trajs[..4], &q).unwrap(),
            db.search_batch(&trajs[..4], &qq).unwrap()
        );

        // Composes with the IVF shortlist: full probe == exhaustive.
        db.build_ann_index(&AnnParams {
            nlists: 5,
            ..Default::default()
        })
        .unwrap();
        let nlists = db.ann_index().unwrap().nlists();
        assert_eq!(
            db.search(&trajs[3], &q).unwrap(),
            db.search(&trajs[3], &Query::new(6).quantized().shortlist_ann(nlists))
                .unwrap()
        );
        // And with exact re-ranking.
        let rr = db
            .search(
                &trajs[3],
                &Query::new(3).shortlist(10).quantized().rerank(&Hausdorff),
            )
            .unwrap();
        assert_eq!(rr[0].index, 3);

        // Inserts keep the view in lockstep.
        let idx = db.insert(trajs[35].clone()).unwrap();
        assert_eq!(db.quantized_store().unwrap().len(), db.len());
        let res = db.search(&trajs[35], &Query::new(1).quantized()).unwrap();
        assert_eq!(res[0].index, idx);

        // The quantized work was counted, and each scored row cost
        // dim + 16 bytes (vs 8·dim + 8 on the f64 path).
        let report = registry.snapshot();
        let counter = |name: &str| {
            report
                .counters
                .iter()
                .find(|(n, _)| n == name)
                .unwrap_or_else(|| panic!("missing {name}"))
                .1
        };
        let rows = counter(names::QUANT_ROWS_SCANNED_TOTAL);
        assert!(rows > 0);
        assert_eq!(
            counter(names::QUANT_BYTES_SCANNED_TOTAL),
            rows * (db.model().dim() as u64 + 16)
        );
    }

    #[test]
    fn quantized_store_persists_through_the_sealed_envelope() {
        let (model, trajs) = trained_model_and_corpus();
        let mut db = SimilarityDb::with_corpus(model, trajs.clone(), 2);
        let dir = std::env::temp_dir().join(format!("neutraj-ntq08-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corpus.ntq08");

        // Nothing to save yet.
        assert!(db.save_quantized_store(&path).is_err());
        db.build_quantized_store();
        db.save_quantized_store(&path).unwrap();
        let saved = db.quantized_store().unwrap().clone();
        db.clear_quantized_store();
        assert!(db.quantized_store().is_none());
        db.load_quantized_store(&path).unwrap();
        assert_eq!(db.quantized_store().unwrap(), &saved);

        // A flipped payload byte fails the envelope CRC.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        let bad = dir.join("corrupt.ntq08");
        std::fs::write(&bad, &bytes).unwrap();
        assert!(db.load_quantized_store(&bad).is_err());
        // The db keeps serving from the previously loaded view.
        assert!(db.quantized_store().is_some());

        // A view for a different corpus is rejected at load time.
        let mut small = SimilarityDb::with_corpus(db.model().clone(), trajs[..10].to_vec(), 2);
        small.build_quantized_store();
        let other = dir.join("other.ntq08");
        small.save_quantized_store(&other).unwrap();
        assert!(db.load_quantized_store(&other).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pair_similarity_bounds() {
        let (model, trajs) = trained_model_and_corpus();
        let db = SimilarityDb::with_corpus(model, trajs, 2);
        assert!((db.pair_similarity(0, 0) - 1.0).abs() < 1e-12);
        let g = db.pair_similarity(0, 1);
        assert!(g > 0.0 && g <= 1.0);
        assert_eq!(db.pair_similarity(0, 1), db.pair_similarity(1, 0));
    }
}
