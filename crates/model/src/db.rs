//! A high-level similarity database: one trained model + a growing corpus
//! with precomputed embeddings.
//!
//! This is the deployment-shaped API (§VI-A: "for a trajectory database,
//! the trajectories embeddings only need to be computed once; when new
//! trajectory similarity query is conducted, we generate the embedding of
//! the new trajectory and perform search based on the distance of
//! embeddings").

use crate::backbone::NeuTrajModel;
use crate::loss::pair_similarity;
use crate::search::EmbeddingStore;
use neutraj_measures::{Measure, Neighbor};
use neutraj_nn::linalg::euclidean;
use neutraj_trajectory::Trajectory;

/// A corpus of trajectories indexed by a trained NeuTraj model.
///
/// Inserts cost one `O(L)` embedding; queries cost one embedding plus an
/// `O(N·d)` norm-trick scan through the backing [`EmbeddingStore`]
/// (batched queries share one GEMM per corpus block). The database owns
/// its trajectories so results can be re-ranked with an exact measure on
/// demand.
#[derive(Debug, Clone)]
pub struct SimilarityDb {
    model: NeuTrajModel,
    trajectories: Vec<Trajectory>,
    /// Embeddings + precomputed row norms for norm-trick scans.
    embeddings: EmbeddingStore,
}

impl SimilarityDb {
    /// Creates an empty database over a trained model.
    pub fn new(model: NeuTrajModel) -> Self {
        let store = EmbeddingStore::new(model.dim());
        Self {
            model,
            trajectories: Vec::new(),
            embeddings: store,
        }
    }

    /// Creates a database and bulk-loads `corpus` with `threads` workers.
    pub fn with_corpus(model: NeuTrajModel, corpus: Vec<Trajectory>, threads: usize) -> Self {
        let mut db = Self::new(model);
        db.insert_batch(corpus, threads);
        db
    }

    /// The underlying model.
    pub fn model(&self) -> &NeuTrajModel {
        &self.model
    }

    /// Number of stored trajectories.
    pub fn len(&self) -> usize {
        self.trajectories.len()
    }

    /// Returns `true` when the database is empty.
    pub fn is_empty(&self) -> bool {
        self.trajectories.is_empty()
    }

    /// Borrow a stored trajectory.
    pub fn get(&self, idx: usize) -> Option<&Trajectory> {
        self.trajectories.get(idx)
    }

    /// Embedding of stored item `idx`.
    pub fn embedding(&self, idx: usize) -> &[f64] {
        self.embeddings.get(idx)
    }

    /// The backing embedding store (for direct scan access).
    pub fn store(&self) -> &EmbeddingStore {
        &self.embeddings
    }

    /// Inserts one trajectory; returns its index.
    pub fn insert(&mut self, t: Trajectory) -> usize {
        let e = self.model.embed(&t);
        self.embeddings.push(&e);
        self.trajectories.push(t);
        self.trajectories.len() - 1
    }

    /// Inserts many trajectories, embedding them with the lockstep
    /// batched forward on `threads` workers.
    pub fn insert_batch(&mut self, ts: Vec<Trajectory>, threads: usize) {
        let embs = self.model.embed_all(&ts, threads);
        for e in &embs {
            self.embeddings.push(e);
        }
        self.trajectories.extend(ts);
    }

    /// Top-k most similar stored trajectories to an ad-hoc `query`,
    /// ascending by embedding distance.
    pub fn knn(&self, query: &Trajectory, k: usize) -> Vec<Neighbor> {
        let qe = self.model.embed(query);
        self.knn_embedding(&qe, k)
    }

    /// Top-k for a whole batch of ad-hoc queries: one lockstep batched
    /// embed, then one norm-trick GEMM scan per corpus block shared by
    /// every query. Each result is bit-identical to [`Self::knn`] on that
    /// query.
    pub fn knn_batch(&self, queries: &[Trajectory], k: usize) -> Vec<Vec<Neighbor>> {
        let qembs = self.model.embed_batch(queries);
        let qrefs: Vec<&[f64]> = qembs.iter().map(|e| e.as_slice()).collect();
        self.embeddings.knn_batch(&qrefs, k)
    }

    /// Top-k by a precomputed query embedding.
    pub fn knn_embedding(&self, query_emb: &[f64], k: usize) -> Vec<Neighbor> {
        self.embeddings.knn(query_emb, k)
    }

    /// Top-k of a *stored* item (excluding itself).
    pub fn knn_of(&self, idx: usize, k: usize) -> Vec<Neighbor> {
        self.knn_embedding(self.embedding(idx), k + 1)
            .into_iter()
            .filter(|n| n.index != idx)
            .take(k)
            .collect()
    }

    /// The paper's protocol: shortlist by embeddings, re-rank the
    /// shortlist by the exact `measure` (computed on grid-rescaled
    /// coordinates so values match the training scale), return top-k.
    pub fn knn_reranked(
        &self,
        query: &Trajectory,
        measure: &dyn Measure,
        shortlist: usize,
        k: usize,
    ) -> Vec<Neighbor> {
        self.knn_reranked_batch(std::slice::from_ref(query), measure, shortlist, k)
            .pop()
            .expect("one query in, one result out")
    }

    /// Batched [`Self::knn_reranked`]: all shortlists come from one
    /// batched embed + norm-trick scan, then each is re-ranked with the
    /// exact `measure`.
    pub fn knn_reranked_batch(
        &self,
        queries: &[Trajectory],
        measure: &dyn Measure,
        shortlist: usize,
        k: usize,
    ) -> Vec<Vec<Neighbor>> {
        let grid = self.model.grid();
        let shorts = self.knn_batch(queries, shortlist);
        shorts
            .into_iter()
            .zip(queries)
            .map(|(short, query)| {
                let q = grid.rescale_trajectory(query);
                let mut out: Vec<Neighbor> = short
                    .into_iter()
                    .map(|n| Neighbor {
                        index: n.index,
                        dist: measure.dist(
                            q.points(),
                            grid.rescale_trajectory(&self.trajectories[n.index])
                                .points(),
                        ),
                    })
                    .collect();
                out.sort_by(|a, b| {
                    a.dist
                        .partial_cmp(&b.dist)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.index.cmp(&b.index))
                });
                out.truncate(k);
                out
            })
            .collect()
    }

    /// Learned similarity `g` between two *stored* items.
    pub fn pair_similarity(&self, i: usize, j: usize) -> f64 {
        pair_similarity(self.embedding(i), self.embedding(j))
    }

    /// Similarity join (the paper's motivating all-pairs workload, §I):
    /// all stored pairs `(i, j)` with exact distance ≤ `tau` under
    /// `measure`, found by **embedding-space candidate generation**
    /// (pairs with embedding distance ≤ `emb_radius`, an `O(N²·d)` scan)
    /// followed by **exact verification** of the survivors only.
    ///
    /// Exact distances are computed in grid units (the training scale),
    /// so `tau` is in grid units too. The result is exact on the
    /// candidate set; recall depends on `emb_radius` — since the model is
    /// trained so `exp(-‖E_i−E_j‖) ≈ exp(-α·D_ij)`, a radius of
    /// `α·tau·slack` with `slack ≈ 2–3` captures nearly all true pairs at
    /// a fraction of the `O(N²·L²)` exact-join cost. Pairs are returned
    /// with their exact distance, `i < j`, sorted ascending by distance.
    pub fn similarity_join(
        &self,
        measure: &dyn Measure,
        tau: f64,
        emb_radius: f64,
    ) -> Vec<(usize, usize, f64)> {
        let grid = self.model.grid();
        let rescaled: Vec<Trajectory> = self
            .trajectories
            .iter()
            .map(|t| grid.rescale_trajectory(t))
            .collect();
        let n = self.len();
        let mut out = Vec::new();
        for i in 0..n {
            for j in i + 1..n {
                if euclidean(self.embedding(i), self.embedding(j)) > emb_radius {
                    continue;
                }
                let d = measure.dist(rescaled[i].points(), rescaled[j].points());
                if d <= tau {
                    out.push((i, j, d));
                }
            }
        }
        out.sort_by(|a, b| {
            a.2.partial_cmp(&b.2)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then((a.0, a.1).cmp(&(b.0, b.1)))
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TrainConfig, Trainer};
    use neutraj_measures::{DistanceMatrix, Hausdorff};
    use neutraj_trajectory::gen::PortoLikeGenerator;
    use neutraj_trajectory::Grid;

    fn trained_model_and_corpus() -> (NeuTrajModel, Vec<Trajectory>) {
        let ds = PortoLikeGenerator {
            num_trajectories: 40,
            max_len: 30,
            ..Default::default()
        }
        .generate(5);
        let trajs = ds.trajectories().to_vec();
        let grid = Grid::covering(&trajs, 100.0).unwrap();
        let rescaled: Vec<Trajectory> = trajs.iter().map(|t| grid.rescale_trajectory(t)).collect();
        let dist = DistanceMatrix::compute(&Hausdorff, &rescaled[..20]);
        let cfg = TrainConfig {
            dim: 8,
            epochs: 3,
            n_samples: 4,
            ..TrainConfig::neutraj()
        };
        let (model, _) = Trainer::new(cfg, grid).fit(&trajs[..20], &dist, |_| {});
        (model, trajs)
    }

    #[test]
    fn insert_and_query() {
        let (model, trajs) = trained_model_and_corpus();
        let mut db = SimilarityDb::new(model);
        assert!(db.is_empty());
        for t in &trajs[..30] {
            db.insert(t.clone());
        }
        assert_eq!(db.len(), 30);
        // Query with a stored trajectory: it must rank itself first.
        let res = db.knn(&trajs[7], 3);
        assert_eq!(res[0].index, 7);
        assert!(res[0].dist < 1e-12);
        // knn_of excludes self.
        let res = db.knn_of(7, 3);
        assert!(res.iter().all(|n| n.index != 7));
        assert_eq!(res.len(), 3);
    }

    #[test]
    fn batch_insert_matches_single_insert() {
        let (model, trajs) = trained_model_and_corpus();
        let mut a = SimilarityDb::new(model.clone());
        for t in &trajs {
            a.insert(t.clone());
        }
        let b = SimilarityDb::with_corpus(model, trajs.clone(), 4);
        assert_eq!(a.len(), b.len());
        for i in 0..a.len() {
            assert_eq!(a.embedding(i), b.embedding(i));
        }
    }

    #[test]
    fn rerank_orders_by_exact_distance() {
        let (model, trajs) = trained_model_and_corpus();
        let db = SimilarityDb::with_corpus(model, trajs.clone(), 2);
        let res = db.knn_reranked(&trajs[3], &Hausdorff, 10, 5);
        assert_eq!(res.len(), 5);
        assert_eq!(res[0].index, 3); // exact self-distance 0
        for w in res.windows(2) {
            assert!(w[0].dist <= w[1].dist);
        }
    }

    #[test]
    fn similarity_join_is_sound_and_recalls_with_wide_radius() {
        let (model, trajs) = trained_model_and_corpus();
        let db = SimilarityDb::with_corpus(model, trajs.clone(), 2);
        // Exact reference join.
        let grid = db.model().grid().clone();
        let rescaled: Vec<Trajectory> = trajs.iter().map(|t| grid.rescale_trajectory(t)).collect();
        let tau = 3.0; // grid units
        let mut truth = Vec::new();
        for i in 0..trajs.len() {
            for j in i + 1..trajs.len() {
                let d = Hausdorff.dist(rescaled[i].points(), rescaled[j].points());
                if d <= tau {
                    truth.push((i, j));
                }
            }
        }
        // Infinite radius ⇒ the join must equal the exact join.
        let full = db.similarity_join(&Hausdorff, tau, f64::INFINITY);
        let full_pairs: Vec<(usize, usize)> = full.iter().map(|&(i, j, _)| (i, j)).collect();
        let mut sorted_truth = truth.clone();
        sorted_truth.sort_unstable();
        let mut sorted_full = full_pairs.clone();
        sorted_full.sort_unstable();
        assert_eq!(sorted_full, sorted_truth);
        // Soundness at any radius: results ⊆ exact join, distances ≤ tau,
        // ascending order.
        let pruned = db.similarity_join(&Hausdorff, tau, 1.0);
        for w in pruned.windows(2) {
            assert!(w[0].2 <= w[1].2);
        }
        for &(i, j, d) in &pruned {
            assert!(d <= tau);
            assert!(sorted_truth.binary_search(&(i, j)).is_ok());
        }
        assert!(pruned.len() <= full.len());
    }

    #[test]
    fn pair_similarity_bounds() {
        let (model, trajs) = trained_model_and_corpus();
        let db = SimilarityDb::with_corpus(model, trajs, 2);
        assert!((db.pair_similarity(0, 0) - 1.0).abs() < 1e-12);
        let g = db.pair_similarity(0, 1);
        assert!(g > 0.0 && g <= 1.0);
        assert_eq!(db.pair_similarity(0, 1), db.pair_similarity(1, 0));
    }
}
