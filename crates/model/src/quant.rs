//! Int8 scalar quantization of the embedding store: the `NTQ08` codec
//! and the quantized scan paths (`DESIGN.md` §12).
//!
//! # Why
//!
//! At large `N` the exhaustive norm-trick scan and the IVF shortlist are
//! *memory-bound*: every probed row streams `8·d` bytes of f64. A
//! [`QuantizedStore`] is a lossy u8 view of the same rows — per-row
//! scale+offset codes, `d` bytes each — so the scan reads ~8× fewer
//! bytes and scores candidates with an exact-integer u8 dot product
//! ([`neutraj_nn::simd::dot_u8`]). Quantization error only affects
//! *which* rows make the over-fetched shortlist; the survivors are
//! re-scored against the parent f64 store with the very same norm-trick
//! expression the exact paths use, so reported distances are
//! bit-identical to the exhaustive scan's and any loss is pure recall
//! (measured ≥ 0.99 @ 10 by `neutraj-eval`).
//!
//! # Quantization scheme
//!
//! Per row (the "block" of the codec): `offset = min(row)`,
//! `scale = (max(row) − min(row)) / 255`, `code = round((v − offset) /
//! scale)` ∈ [0, 255], so dequantization `v̂ = offset + scale·code` has
//! per-element error ≤ `scale/2` (property-tested). A constant row gets
//! `scale = 0` and all-zero codes — exact. The approximate distance
//! between a quantized query `q̂` and row `x̂` expands like the norm
//! trick, entirely from precomputed row statistics plus one integer dot:
//!
//! `‖q̂−x̂‖² = ‖q̂‖² − 2·(d·qo·xo + qo·xs·Sx + xo·qs·Sq + qs·xs·D) + ‖x̂‖²`
//!
//! with `S* = Σ codes`, `D = Σ q_code·x_code` (the u8 dot).

use crate::persist::{
    atomic_write, decode_f64s, encode_f64s, fail, open_payload, read_enveloped, seal_payload,
    write_enveloped, PersistError,
};
use crate::search::EmbeddingStore;
use bytes::{Buf, BufMut, BytesMut};
use neutraj_index::{CoarseQuantizer, IvfIndex};
use neutraj_measures::{Neighbor, NeighborHeap};
use neutraj_nn::linalg::dot;
use neutraj_nn::simd::{dot_u8, quant_scan_block, QuantQueryTerms};
use neutraj_obs::simd::SimdLevel;
use std::path::Path;

/// Section magic of the quantized-store codec, sealed inside the
/// standard `NTFILE01` CRC envelope by [`QuantizedStore::save`].
pub(crate) const QUANT_MAGIC: &[u8; 8] = b"NTQ08\0\0\0";

/// Maximum supported embedding dimensionality — the bound under which
/// the AVX2 u8 dot's i32 pair accumulators cannot overflow (see
/// [`dot_u8`]).
pub const QUANT_MAX_DIM: usize = 32768;

/// A u8 scale+offset view of an [`EmbeddingStore`], kept in lockstep
/// with it by [`crate::SimilarityDb::insert`] once built.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedStore {
    dim: usize,
    /// `N×dim` row-major codes.
    codes: Vec<u8>,
    /// Per-row dequantization offset (the row minimum).
    offset: Vec<f64>,
    /// Per-row dequantization scale (`range/255`, 0 for constant rows).
    scale: Vec<f64>,
    /// Per-row `Σ codes` (exact in f64: ≤ 255·32768).
    code_sum: Vec<f64>,
    /// Per-row `‖dequantized row‖²`.
    dq_norm: Vec<f64>,
    /// Dispatch level for the u8 dot kernel, captured from
    /// [`neutraj_obs::simd::level`] at construction.
    level: SimdLevel,
}

/// A query quantized against its own min/max, with the statistics the
/// approximate-distance expansion needs. Build one per query via
/// [`QuantizedStore::quantize_query`].
#[derive(Debug, Clone)]
pub struct QuantizedQuery {
    codes: Vec<u8>,
    offset: f64,
    scale: f64,
    code_sum: f64,
    /// `‖dequantized query‖²`.
    dq_norm: f64,
}

/// Work counters reported by the quantized scan paths — raw material
/// for `neutraj_quant_rows_scanned_total` / `_bytes_scanned_total`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QuantStats {
    /// Rows scored through their u8 codes.
    pub rows_scanned: usize,
    /// Bytes those rows cost (`dim` code bytes + 16 bytes of row stats),
    /// vs `8·dim + 8` for the f64 path.
    pub bytes_scanned: usize,
    /// Shortlist survivors re-scored exactly against the parent store.
    pub reranked: usize,
}

/// Quantizes one row; returns `(codes, offset, scale)`.
fn quantize_row(row: &[f64], codes: &mut Vec<u8>) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &v in row {
        assert!(v.is_finite(), "cannot quantize a non-finite embedding");
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if row.is_empty() {
        return (0.0, 0.0);
    }
    let range = hi - lo;
    if range == 0.0 {
        codes.extend(std::iter::repeat_n(0u8, row.len()));
        return (lo, 0.0);
    }
    let scale = range / 255.0;
    let inv = 255.0 / range;
    codes.extend(row.iter().map(|&v| {
        // Clamp against fp round-up at the range edges.
        ((v - lo) * inv).round().clamp(0.0, 255.0) as u8
    }));
    (lo, scale)
}

impl QuantizedStore {
    /// An empty quantized store of dimensionality `dim`.
    pub fn new(dim: usize) -> Self {
        assert!(dim <= QUANT_MAX_DIM, "dim exceeds QUANT_MAX_DIM");
        Self {
            dim,
            codes: Vec::new(),
            offset: Vec::new(),
            scale: Vec::new(),
            code_sum: Vec::new(),
            dq_norm: Vec::new(),
            level: neutraj_obs::simd::level(),
        }
    }

    /// Quantizes every row of `store`.
    pub fn from_store(store: &EmbeddingStore) -> Self {
        let mut qs = Self::new(store.dim());
        qs.codes.reserve(store.len() * store.dim());
        for i in 0..store.len() {
            qs.push(store.get(i));
        }
        qs
    }

    /// Pins the u8-dot dispatch level (tests force scalar and AVX2 in
    /// one process; production keeps the process-wide default).
    pub fn with_simd_level(mut self, level: SimdLevel) -> Self {
        self.level = level;
        self
    }

    /// Appends one row, quantizing it. Panics on dimension mismatch or
    /// non-finite values (the db validates upstream).
    pub fn push(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.dim, "embedding dim mismatch");
        let (off, scale) = quantize_row(row, &mut self.codes);
        self.push_stats(off, scale);
    }

    /// Computes and stores the derived row statistics for the freshly
    /// appended codes (shared by [`Self::push`] and the codec load).
    fn push_stats(&mut self, off: f64, scale: f64) {
        let i = self.offset.len();
        let codes = &self.codes[i * self.dim..(i + 1) * self.dim];
        let (mut s, mut s2) = (0u64, 0u64);
        for &c in codes {
            s += u64::from(c);
            s2 += u64::from(c) * u64::from(c);
        }
        let (sum, sumsq) = (s as f64, s2 as f64);
        self.offset.push(off);
        self.scale.push(scale);
        self.code_sum.push(sum);
        // ‖off + s·c‖² = d·off² + 2·off·s·Σc + s²·Σc².
        self.dq_norm
            .push(self.dim as f64 * off * off + 2.0 * off * scale * sum + scale * scale * sumsq);
    }

    /// Number of quantized rows.
    pub fn len(&self) -> usize {
        self.offset.len()
    }

    /// Returns `true` when no rows are stored.
    pub fn is_empty(&self) -> bool {
        self.offset.is_empty()
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The u8 codes of row `i`.
    pub fn codes(&self, i: usize) -> &[u8] {
        &self.codes[i * self.dim..(i + 1) * self.dim]
    }

    /// Dequantizes row `i` (tests and the error-bound proptest).
    pub fn dequantize(&self, i: usize) -> Vec<f64> {
        self.codes(i)
            .iter()
            .map(|&c| self.offset[i] + self.scale[i] * f64::from(c))
            .collect()
    }

    /// Quantizes a query against its own min/max and precomputes the
    /// statistics of the approximate-distance expansion.
    pub fn quantize_query(&self, q: &[f64]) -> QuantizedQuery {
        assert_eq!(q.len(), self.dim, "query dim mismatch");
        let mut codes = Vec::with_capacity(q.len());
        let (offset, scale) = quantize_row(q, &mut codes);
        let (mut s, mut s2) = (0u64, 0u64);
        for &c in &codes {
            s += u64::from(c);
            s2 += u64::from(c) * u64::from(c);
        }
        let (code_sum, sumsq) = (s as f64, s2 as f64);
        let dq_norm = q.len() as f64 * offset * offset
            + 2.0 * offset * scale * code_sum
            + scale * scale * sumsq;
        QuantizedQuery {
            codes,
            offset,
            scale,
            code_sum,
            dq_norm,
        }
    }

    /// Approximate squared distance between quantized query and row `i`
    /// — the norm-trick expansion over dequantized values, with the only
    /// data-dependent term an exact-integer u8 dot over `d` bytes.
    #[inline]
    pub fn approx_d2(&self, q: &QuantizedQuery, i: usize) -> f64 {
        self.approx_d2_from_dot(q, i, dot_u8(self.level, &q.codes, self.codes(i)) as f64)
    }

    /// The affine tail of [`Self::approx_d2`] once the integer dot `D`
    /// is known — shared by the per-row path and the blocked scan, so
    /// both produce bit-identical scores by construction.
    #[inline]
    fn approx_d2_from_dot(&self, q: &QuantizedQuery, i: usize, d: f64) -> f64 {
        let (xo, xs) = (self.offset[i], self.scale[i]);
        let cross = self.dim as f64 * q.offset * xo
            + q.offset * xs * self.code_sum[i]
            + xo * q.scale * q.code_sum
            + q.scale * xs * d;
        (q.dq_norm - 2.0 * cross + self.dq_norm[i]).max(0.0)
    }

    /// How many approximate-shortlist entries to keep ahead of the exact
    /// re-score for `k` final results: over-fetch absorbs quantization
    /// rank noise (recall@10 ≥ 0.99 on the eval harness).
    pub fn refine_width(&self, k: usize) -> usize {
        (4 * k).max(k + 32).min(self.len())
    }

    /// Exhaustive quantized top-`k`: scan every row through its codes,
    /// keep an over-fetched shortlist by approximate distance, then
    /// re-score the survivors against `parent` with the exact norm-trick
    /// expression (bit-identical distances to
    /// [`EmbeddingStore::knn_batch`] on the same rows).
    ///
    /// Panics when `parent` is not the store this view quantized
    /// (dimension or row-count mismatch).
    pub fn knn_batch(
        &self,
        parent: &EmbeddingStore,
        queries: &[&[f64]],
        k: usize,
    ) -> (Vec<Vec<Neighbor>>, QuantStats) {
        self.check_parent(parent);
        let refine = self.refine_width(k);
        let mut stats = QuantStats::default();
        let mut heap = NeighborHeap::new(refine.max(1));
        let mut short = Vec::new();
        // Rows are scored in contiguous blocks: one dispatched
        // `quant_scan_block` call per block fuses the exact-integer u8
        // dots (four rows per step, the block's codes and the query hot
        // in L1/L2) with the 4-lane affine tail over the precomputed
        // row-statistic columns. Identical arithmetic to the per-row
        // `approx_d2`, just batched — `quant_score`'s operand order is
        // `approx_d2_from_dot`'s, so scores are bit-identical.
        const BLOCK: usize = 512;
        let mut d2s = vec![0.0f64; BLOCK.min(self.len().max(1))];
        let results = queries
            .iter()
            .map(|q| {
                let qq = self.quantize_query(q);
                heap.reset(refine.max(1));
                let terms = QuantQueryTerms {
                    dqo: self.dim as f64 * qq.offset,
                    qo: qq.offset,
                    qs: qq.scale,
                    qsum: qq.code_sum,
                    qn: qq.dq_norm,
                };
                // Only candidates that beat the current worst kept entry
                // touch the heap; strict `<` is safe because indices
                // ascend and the heap's tie-break is by index, so an
                // equal-distance later row would be rejected anyway.
                let mut t = f64::INFINITY;
                let mut start = 0;
                while start < self.len() {
                    let end = (start + BLOCK).min(self.len());
                    let out = &mut d2s[..end - start];
                    quant_scan_block(
                        self.level,
                        &qq.codes,
                        &self.codes[start * self.dim..end * self.dim],
                        &self.offset[start..end],
                        &self.scale[start..end],
                        &self.code_sum[start..end],
                        &self.dq_norm[start..end],
                        &terms,
                        out,
                    );
                    for (j, &d2) in out.iter().enumerate() {
                        if d2 < t {
                            heap.push(start + j, d2);
                            if let Some(worst) = heap.threshold() {
                                t = worst.dist;
                            }
                        }
                    }
                    start = end;
                }
                stats.rows_scanned += self.len();
                stats.bytes_scanned += self.len() * (self.dim + 16);
                short.clear();
                heap.drain_sorted_into(&mut short);
                self.rerank_exact(parent, q, &short, k, &mut stats)
            })
            .collect();
        (results, stats)
    }

    /// IVF-shortlisted quantized top-`k`: probe `nprobe` lists, score
    /// the candidates through their codes, then exactly re-score the
    /// over-fetched survivors against `parent` — the quantized
    /// counterpart of [`EmbeddingStore::knn_ann_batch`].
    pub fn knn_ann_batch<Q: CoarseQuantizer>(
        &self,
        parent: &EmbeddingStore,
        queries: &[&[f64]],
        k: usize,
        index: &IvfIndex<Q>,
        nprobe: usize,
    ) -> (Vec<Vec<Neighbor>>, QuantStats) {
        self.check_parent(parent);
        assert_eq!(index.dim(), self.dim, "ann index dim mismatch");
        assert_eq!(
            index.len(),
            self.len(),
            "ann index is stale: row count mismatch"
        );
        assert!(nprobe > 0, "nprobe must be positive");
        let refine = self.refine_width(k);
        let mut stats = QuantStats::default();
        let mut heap = NeighborHeap::new(refine.max(1));
        let mut cand: Vec<u32> = Vec::new();
        let mut short = Vec::new();
        let results = queries
            .iter()
            .map(|q| {
                let qq = self.quantize_query(q);
                index.candidates_into(q, nprobe, &mut cand);
                heap.reset(refine.max(1));
                for &i in &cand {
                    heap.push(i as usize, self.approx_d2(&qq, i as usize));
                }
                stats.rows_scanned += cand.len();
                stats.bytes_scanned += cand.len() * (self.dim + 16);
                short.clear();
                heap.drain_sorted_into(&mut short);
                self.rerank_exact(parent, q, &short, k, &mut stats)
            })
            .collect();
        (results, stats)
    }

    /// Exact re-score of an approximate shortlist: the same
    /// `(‖q‖² − 2·q·x + ‖x‖²).max(0)` then `sqrt` as every exact scan
    /// path, so the distances of the survivors match bit-for-bit.
    fn rerank_exact(
        &self,
        parent: &EmbeddingStore,
        q: &[f64],
        short: &[Neighbor],
        k: usize,
        stats: &mut QuantStats,
    ) -> Vec<Neighbor> {
        let qn = dot(q, q);
        let mut heap = NeighborHeap::new(k);
        for n in short {
            let d2 = (qn - 2.0 * dot(q, parent.get(n.index)) + parent.norm_sq(n.index)).max(0.0);
            heap.push(n.index, d2);
        }
        stats.reranked += short.len();
        let mut out = Vec::with_capacity(k.min(short.len()));
        heap.drain_sorted_into(&mut out);
        for nb in &mut out {
            nb.dist = nb.dist.sqrt();
        }
        out
    }

    fn check_parent(&self, parent: &EmbeddingStore) {
        assert_eq!(parent.dim(), self.dim, "parent store dim mismatch");
        assert_eq!(
            parent.len(),
            self.len(),
            "quantized view is stale: row count mismatch"
        );
    }

    // -- NTQ08 codec --------------------------------------------------

    /// Serializes the store as an `NTQ08` section (magic, dims, per-row
    /// offset/scale, codes). Derived statistics are recomputed on load.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf =
            BytesMut::with_capacity(QUANT_MAGIC.len() + 16 + self.len() * (self.dim + 16) + 32);
        buf.put_slice(QUANT_MAGIC);
        buf.put_u64_le(self.len() as u64);
        buf.put_u64_le(self.dim as u64);
        encode_f64s(&mut buf, &self.offset);
        encode_f64s(&mut buf, &self.scale);
        buf.put_slice(&self.codes);
        buf.to_vec()
    }

    /// Parses an `NTQ08` section, validating structure (magic, counts,
    /// exact length) and values (finite offsets, non-negative finite
    /// scales) before rebuilding the derived statistics.
    pub fn from_bytes(mut data: &[u8]) -> Result<Self, PersistError> {
        if data.len() < QUANT_MAGIC.len() || &data[..QUANT_MAGIC.len()] != QUANT_MAGIC {
            return Err(fail("bad quantized-store magic (not an NTQ08 section?)"));
        }
        data.advance(QUANT_MAGIC.len());
        if data.remaining() < 16 {
            return Err(fail("NTQ08 header truncated"));
        }
        let n = data.get_u64_le() as usize;
        let dim = data.get_u64_le() as usize;
        if dim > QUANT_MAX_DIM {
            return Err(fail(format!("NTQ08 dim {dim} exceeds {QUANT_MAX_DIM}")));
        }
        let offset = decode_f64s(&mut data)?;
        let scale = decode_f64s(&mut data)?;
        if offset.len() != n || scale.len() != n {
            return Err(fail(format!(
                "NTQ08 row-stat count mismatch: {} offsets / {} scales for {n} rows",
                offset.len(),
                scale.len()
            )));
        }
        let want = n
            .checked_mul(dim)
            .ok_or_else(|| fail("NTQ08 code length overflows"))?;
        if data.remaining() != want {
            return Err(fail(format!(
                "NTQ08 code bytes mismatch: expected {want}, got {}",
                data.remaining()
            )));
        }
        for (i, (&o, &s)) in offset.iter().zip(&scale).enumerate() {
            if !o.is_finite() || !s.is_finite() || s < 0.0 {
                return Err(fail(format!(
                    "NTQ08 row {i} has invalid stats (offset {o}, scale {s})"
                )));
            }
        }
        let mut qs = Self::new(dim);
        qs.codes = data.to_vec();
        for (i, (&o, &s)) in offset.iter().zip(&scale).enumerate() {
            debug_assert_eq!(qs.offset.len(), i);
            qs.push_stats(o, s);
        }
        Ok(qs)
    }

    /// Persists the store to `path` inside the standard sealed envelope
    /// (`NTFILE01` magic + length + CRC around the `NTQ08` section),
    /// written atomically.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<(), PersistError> {
        atomic_write(path.as_ref(), &seal_payload(&self.to_bytes()))
    }

    /// Streams the sealed envelope to `w` — the seam the fault-injection
    /// harness drives with `FaultyWriter`.
    pub fn write_to<W: std::io::Write>(&self, w: &mut W) -> Result<(), PersistError> {
        write_enveloped(w, &self.to_bytes())
    }

    /// Reads a store from a sealed-envelope stream — the seam the
    /// fault-injection harness drives with
    /// [`FaultyReader`](crate::FaultyReader).
    pub fn read_from<R: std::io::Read>(r: &mut R) -> Result<Self, PersistError> {
        Self::from_bytes(&read_enveloped(r)?)
    }

    /// Loads a store written by [`Self::save`], verifying the envelope
    /// CRC before parsing the section.
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Self, PersistError> {
        let data = std::fs::read(path.as_ref())?;
        let payload = open_payload(&data)?;
        Self::from_bytes(payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(n: usize, dim: usize) -> EmbeddingStore {
        let mut seed = 11u64;
        let mut unit = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 11) as f64 / (1u64 << 53) as f64
        };
        let embs: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..dim).map(|_| unit() * 4.0 - 2.0).collect())
            .collect();
        EmbeddingStore::from_embeddings(dim, &embs)
    }

    #[test]
    fn dequantization_error_is_bounded_by_half_scale() {
        let s = store(64, 24);
        let qs = QuantizedStore::from_store(&s);
        for i in 0..s.len() {
            let dq = qs.dequantize(i);
            let bound = qs.scale[i] * 0.5000001 + 1e-12;
            for (a, b) in s.get(i).iter().zip(&dq) {
                assert!((a - b).abs() <= bound, "row {i}: |{a} - {b}| > {bound}");
            }
        }
    }

    #[test]
    fn constant_rows_roundtrip_exactly() {
        let s = EmbeddingStore::from_embeddings(3, &[vec![0.5; 3], vec![-2.0; 3]]);
        let qs = QuantizedStore::from_store(&s);
        assert_eq!(qs.dequantize(0), vec![0.5; 3]);
        assert_eq!(qs.dequantize(1), vec![-2.0; 3]);
        assert_eq!(qs.scale, vec![0.0, 0.0]);
    }

    #[test]
    fn full_refine_matches_exact_scan_bitwise() {
        let s = store(300, 16);
        let qs = QuantizedStore::from_store(&s);
        let queries: Vec<Vec<f64>> = (0..4).map(|i| s.get(i * 7).to_vec()).collect();
        let qrefs: Vec<&[f64]> = queries.iter().map(|q| q.as_slice()).collect();
        // refine_width(75) == 300 == N: every row is exactly re-scored,
        // so the result must equal the plain scan bit-for-bit.
        let (got, stats) = qs.knn_batch(&s, &qrefs, 75);
        let want = s.knn_batch(&qrefs, 75);
        assert_eq!(got, want);
        assert_eq!(stats.rows_scanned, 4 * 300);
        assert_eq!(stats.bytes_scanned, 4 * 300 * (16 + 16));
    }

    #[test]
    fn quantized_shortlist_has_high_recall_at_10() {
        let s = store(2000, 32);
        let qs = QuantizedStore::from_store(&s);
        let queries: Vec<Vec<f64>> = (0..8).map(|i| s.get(i * 13 + 1).to_vec()).collect();
        let qrefs: Vec<&[f64]> = queries.iter().map(|q| q.as_slice()).collect();
        let (got, _) = qs.knn_batch(&s, &qrefs, 10);
        let want = s.knn_batch(&qrefs, 10);
        let mut hit = 0;
        let mut total = 0;
        for (g, w) in got.iter().zip(&want) {
            for n in w {
                total += 1;
                hit += usize::from(g.iter().any(|m| m.index == n.index));
            }
        }
        assert!(hit as f64 / total as f64 >= 0.99, "recall {hit}/{total}");
    }

    #[test]
    fn ntq08_roundtrips() {
        let s = store(50, 12);
        let qs = QuantizedStore::from_store(&s);
        let back = QuantizedStore::from_bytes(&qs.to_bytes()).expect("roundtrip");
        assert_eq!(qs, back);
    }

    #[test]
    fn ntq08_rejects_structural_damage() {
        let s = store(10, 4);
        let bytes = QuantizedStore::from_store(&s).to_bytes();
        // Wrong magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(QuantizedStore::from_bytes(&bad).is_err());
        // Truncated codes.
        let mut bad = bytes.clone();
        bad.truncate(bytes.len() - 1);
        assert!(QuantizedStore::from_bytes(&bad).is_err());
        // Header truncated.
        assert!(QuantizedStore::from_bytes(&bytes[..10]).is_err());
    }

    #[test]
    fn quantize_query_matches_row_quantization() {
        let s = store(5, 8);
        let qs = QuantizedStore::from_store(&s);
        let qq = qs.quantize_query(s.get(2));
        assert_eq!(qq.codes, qs.codes(2));
        assert_eq!(qq.offset, qs.offset[2]);
        assert_eq!(qq.scale, qs.scale[2]);
        assert_eq!(qq.dq_norm, qs.dq_norm[2]);
        // Self-distance of a quantized row against itself is ~0.
        assert!(qs.approx_d2(&qq, 2) < 1e-18);
    }
}
