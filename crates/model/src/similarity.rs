//! Distance-to-similarity normalization (§V-B).

use neutraj_measures::DistanceMatrix;

/// How raw distances become `[0, 1]` similarity targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Normalization {
    /// `S_ij = exp(-α·D_ij)` — symmetric in `(i, j)`, matching the
    /// symmetry of the learned `g(Ti,Tj) = exp(-‖E_i−E_j‖)`. This is what
    /// the paper's reference implementation uses and the default here:
    /// the row-softmax of the paper text yields *asymmetric* targets for
    /// a symmetric regressor, which measurably hurts fitting (see
    /// `DESIGN.md` §2).
    ExpDecay,
    /// `S_ij = exp(-α·D_ij) / Σ_n exp(-α·D_in)` — the paper text's
    /// row-softmax (§V-B). Kept for fidelity and ablation.
    RowSoftmax,
}

/// The normalized similarity matrix **S** built from a seed distance
/// matrix **D** (§V-B).
///
/// `α` controls how sharply similarity decays with distance;
/// [`SimilarityMatrix::auto_alpha`] picks it so the k-th nearest seed of a
/// median row still receives a markedly non-zero similarity.
#[derive(Debug, Clone, PartialEq)]
pub struct SimilarityMatrix {
    n: usize,
    alpha: f64,
    data: Vec<f64>,
}

impl SimilarityMatrix {
    /// Normalizes `dist` with an explicit `α > 0` and the chosen
    /// normalization.
    ///
    /// Infinite distances map to similarity 0. Panics when `alpha` is not
    /// finite-positive.
    pub fn with_normalization(dist: &DistanceMatrix, alpha: f64, norm: Normalization) -> Self {
        assert!(alpha.is_finite() && alpha > 0.0, "alpha must be positive");
        let n = dist.n();
        let mut data = vec![0.0; n * n];
        for i in 0..n {
            let row = dist.row(i);
            let out = &mut data[i * n..(i + 1) * n];
            let mut sum = 0.0;
            for (j, &d) in row.iter().enumerate() {
                let s = if d.is_finite() {
                    (-alpha * d).exp()
                } else {
                    0.0
                };
                out[j] = s;
                sum += s;
            }
            if norm == Normalization::RowSoftmax && sum > 0.0 {
                let inv = 1.0 / sum;
                for v in out.iter_mut() {
                    *v *= inv;
                }
            }
        }
        Self { n, alpha, data }
    }

    /// The paper-text row-softmax normalization with explicit `α`.
    pub fn from_distances(dist: &DistanceMatrix, alpha: f64) -> Self {
        Self::with_normalization(dist, alpha, Normalization::RowSoftmax)
    }

    /// Symmetric `exp(-α·D)` normalization with explicit `α` (the
    /// training default).
    pub fn exp_decay(dist: &DistanceMatrix, alpha: f64) -> Self {
        Self::with_normalization(dist, alpha, Normalization::ExpDecay)
    }

    /// [`SimilarityMatrix::exp_decay`] with an automatically chosen `α`.
    ///
    /// Heuristic: `α = ln 2 / median_a(D_{a,(k)})` with `k = min(10, N−1)`,
    /// i.e. the similarity at a typical 10-th-nearest-neighbour distance is
    /// half the self-similarity. This keeps the top of each row
    /// discriminative regardless of measure scale.
    pub fn auto(dist: &DistanceMatrix) -> Self {
        Self::exp_decay(dist, Self::auto_alpha(dist))
    }

    /// The `α` chosen by the heuristic described on [`SimilarityMatrix::auto`].
    pub fn auto_alpha(dist: &DistanceMatrix) -> f64 {
        let n = dist.n();
        if n < 2 {
            return 1.0;
        }
        let k = 10.min(n - 1);
        let mut kth: Vec<f64> = (0..n)
            .filter_map(|i| {
                let nn = dist.knn_of(i, k);
                nn.last().map(|&j| dist.get(i, j)).filter(|d| d.is_finite())
            })
            .collect();
        if kth.is_empty() {
            return 1.0;
        }
        kth.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median = kth[kth.len() / 2];
        if median <= 0.0 {
            1.0
        } else {
            std::f64::consts::LN_2 / median
        }
    }

    /// Number of seeds `N`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The `α` used for normalization.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Similarity of seeds `i` and `j` (row-normalized; *not* symmetric).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Row `i` — the importance vector `I_a` for anchor `a` (§V-B).
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.n..(i + 1) * self.n]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_dist() -> DistanceMatrix {
        // 4 items on a line at 0, 1, 2, 10.
        let xs: [f64; 4] = [0.0, 1.0, 2.0, 10.0];
        let mut data = vec![0.0; 16];
        for i in 0..4 {
            for j in 0..4 {
                data[i * 4 + j] = (xs[i] - xs[j]).abs();
            }
        }
        DistanceMatrix::from_raw(4, data)
    }

    #[test]
    fn rows_are_normalized_distributions() {
        let s = SimilarityMatrix::from_distances(&toy_dist(), 0.7);
        for i in 0..4 {
            let sum: f64 = s.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "row {i} sums to {sum}");
            assert!(s.row(i).iter().all(|v| (0.0..=1.0).contains(v)));
        }
    }

    #[test]
    fn similarity_order_reverses_distance_order() {
        let s = SimilarityMatrix::from_distances(&toy_dist(), 0.7);
        // For anchor 0: self > 1 > 2 > 3.
        assert!(s.get(0, 0) > s.get(0, 1));
        assert!(s.get(0, 1) > s.get(0, 2));
        assert!(s.get(0, 2) > s.get(0, 3));
    }

    #[test]
    fn infinite_distance_yields_zero_similarity() {
        let mut data = vec![0.0, 1.0, 1.0, 0.0];
        data[1] = f64::INFINITY;
        let d = DistanceMatrix::from_raw(2, data);
        let s = SimilarityMatrix::from_distances(&d, 1.0);
        assert_eq!(s.get(0, 1), 0.0);
        assert_eq!(s.get(0, 0), 1.0);
    }

    #[test]
    fn alpha_sharpness_monotonicity() {
        let d = toy_dist();
        let soft = SimilarityMatrix::from_distances(&d, 0.1);
        let sharp = SimilarityMatrix::from_distances(&d, 5.0);
        // A sharper alpha concentrates more mass on the self entry.
        assert!(sharp.get(0, 0) > soft.get(0, 0));
    }

    #[test]
    fn auto_alpha_is_scale_invariant() {
        let d1 = toy_dist();
        let scaled: Vec<f64> = (0..16).map(|i| d1.row(i / 4)[i % 4] * 1000.0).collect();
        let d2 = DistanceMatrix::from_raw(4, scaled);
        let a1 = SimilarityMatrix::auto_alpha(&d1);
        let a2 = SimilarityMatrix::auto_alpha(&d2);
        assert!((a1 / a2 / 1000.0 - 1.0).abs() < 1e-9, "a1={a1} a2={a2}");
        // Similarities end up identical after normalization.
        let s1 = SimilarityMatrix::auto(&d1);
        let s2 = SimilarityMatrix::auto(&d2);
        for i in 0..4 {
            for j in 0..4 {
                assert!((s1.get(i, j) - s2.get(i, j)).abs() < 1e-9);
            }
        }
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn invalid_alpha_rejected() {
        let _ = SimilarityMatrix::from_distances(&toy_dist(), -1.0);
    }

    #[test]
    fn degenerate_single_seed() {
        let d = DistanceMatrix::from_raw(1, vec![0.0]);
        let s = SimilarityMatrix::auto(&d);
        assert_eq!(s.get(0, 0), 1.0);
    }

    #[test]
    fn exp_decay_is_symmetric_row_softmax_is_not() {
        // Rows with different densities break row-softmax symmetry.
        let d = DistanceMatrix::from_raw(3, vec![0.0, 1.0, 9.0, 1.0, 0.0, 0.5, 9.0, 0.5, 0.0]);
        let e = SimilarityMatrix::exp_decay(&d, 1.0);
        let r = SimilarityMatrix::from_distances(&d, 1.0);
        assert_eq!(e.get(0, 1), e.get(1, 0));
        assert!((r.get(0, 1) - r.get(1, 0)).abs() > 1e-6);
        // ExpDecay keeps the self-similarity at exactly 1.
        assert_eq!(e.get(2, 2), 1.0);
    }
}
