//! Distance-weighted sampling of training pairs (§V-B).
//!
//! For an anchor seed `T_a`, NeuTraj samples `n` *similar* seeds with
//! probability proportional to the anchor's similarity row `I_a`, and `n`
//! *dissimilar* seeds with probability proportional to `1 − I_a` — then
//! ranks both lists so the ranking loss can weight pairs by `1/rank`.
//! The NT-No-WS ablation replaces this with uniform random sampling.

use crate::similarity::SimilarityMatrix;
use rand::rngs::StdRng;
use rand::Rng;

/// The sampled pair lists for one anchor.
#[derive(Debug, Clone, PartialEq)]
pub struct AnchorSamples {
    /// The anchor's seed index.
    pub anchor: usize,
    /// Similar seeds, sorted by **decreasing** similarity to the anchor.
    pub similar: Vec<usize>,
    /// Dissimilar seeds, sorted by **increasing** similarity to the anchor
    /// (most dissimilar first, per the paper's "increase order" of rank
    /// importance on the dissimilar side).
    pub dissimilar: Vec<usize>,
}

/// Weighted sampling *without replacement* of `n` indices from `weights`
/// (index `skip` excluded), via the Efraimidis–Spirakis exponential-keys
/// method. Zero-weight items are only drawn when fewer positive-weight
/// items exist than requested.
fn weighted_sample_without_replacement(
    weights: &[f64],
    skip: usize,
    n: usize,
    rng: &mut StdRng,
) -> Vec<usize> {
    let mut keyed: Vec<(f64, usize)> = Vec::with_capacity(weights.len().saturating_sub(1));
    for (i, &w) in weights.iter().enumerate() {
        if i == skip {
            continue;
        }
        let key = if w > 0.0 {
            // Standard E-S key: u^(1/w); use -ln(u)/w and pick smallest
            // for numerical stability.
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            -u.ln() / w
        } else {
            // Zero weight sorts after every positive weight; a random tail
            // key shuffles ties among zero-weight items.
            f64::MAX * rng.gen_range(0.5..1.0)
        };
        keyed.push((key, i));
    }
    keyed.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    keyed.into_iter().take(n).map(|(_, i)| i).collect()
}

/// Distance-weighted sampling for one anchor (§V-B): `n` similar seeds
/// (importance ∝ `S` row) and `n` dissimilar seeds (importance ∝ `1 − S`
/// row), both without replacement, each ranked as [`AnchorSamples`]
/// documents. Requesting more samples than available truncates.
pub fn ranked_weighted_samples(
    sim: &SimilarityMatrix,
    anchor: usize,
    n: usize,
    rng: &mut StdRng,
) -> AnchorSamples {
    let row = sim.row(anchor);
    let mut similar = weighted_sample_without_replacement(row, anchor, n, rng);
    let inv: Vec<f64> = row.iter().map(|&s| (1.0 - s).max(0.0)).collect();
    let mut dissimilar = weighted_sample_without_replacement(&inv, anchor, n, rng);
    sort_by_similarity(&mut similar, row, true);
    sort_by_similarity(&mut dissimilar, row, false);
    AnchorSamples {
        anchor,
        similar,
        dissimilar,
    }
}

/// Uniform random sampling for one anchor — the NT-No-WS ablation. The
/// 2n drawn seeds are split into the n most similar (ranked descending)
/// and the n least similar (ranked ascending) so the loss shape stays
/// comparable.
pub fn ranked_random_samples(
    sim: &SimilarityMatrix,
    anchor: usize,
    n: usize,
    rng: &mut StdRng,
) -> AnchorSamples {
    let uniform = vec![1.0; sim.n()];
    let mut drawn = weighted_sample_without_replacement(&uniform, anchor, 2 * n, rng);
    let row = sim.row(anchor);
    sort_by_similarity(&mut drawn, row, true);
    let mid = drawn.len() / 2;
    let similar = drawn[..mid].to_vec();
    let mut dissimilar = drawn[mid..].to_vec();
    dissimilar.reverse(); // least similar first
    AnchorSamples {
        anchor,
        similar,
        dissimilar,
    }
}

fn sort_by_similarity(idx: &mut [usize], row: &[f64], descending: bool) {
    idx.sort_by(|&a, &b| {
        let ord = row[a]
            .partial_cmp(&row[b])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(b.cmp(&a));
        if descending {
            ord.reverse()
        } else {
            ord
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use neutraj_measures::DistanceMatrix;
    use rand::SeedableRng;

    fn line_sim(n: usize) -> SimilarityMatrix {
        let mut data = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                data[i * n + j] = (i as f64 - j as f64).abs();
            }
        }
        SimilarityMatrix::from_distances(&DistanceMatrix::from_raw(n, data), 0.8)
    }

    #[test]
    fn weighted_samples_exclude_anchor_and_are_distinct() {
        let sim = line_sim(30);
        let mut rng = StdRng::seed_from_u64(1);
        for anchor in [0, 7, 29] {
            let s = ranked_weighted_samples(&sim, anchor, 8, &mut rng);
            assert_eq!(s.similar.len(), 8);
            assert_eq!(s.dissimilar.len(), 8);
            assert!(!s.similar.contains(&anchor));
            assert!(!s.dissimilar.contains(&anchor));
            let mut ss = s.similar.clone();
            ss.sort_unstable();
            ss.dedup();
            assert_eq!(ss.len(), 8, "similar list has duplicates");
        }
    }

    #[test]
    fn similar_list_is_ranked_descending() {
        let sim = line_sim(40);
        let mut rng = StdRng::seed_from_u64(2);
        let s = ranked_weighted_samples(&sim, 5, 10, &mut rng);
        let row = sim.row(5);
        for w in s.similar.windows(2) {
            assert!(row[w[0]] >= row[w[1]], "similar list not descending");
        }
        for w in s.dissimilar.windows(2) {
            assert!(row[w[0]] <= row[w[1]], "dissimilar list not ascending");
        }
    }

    #[test]
    fn weighted_sampling_prefers_near_seeds() {
        // Statistically: the similar list of anchor 0 should be dominated
        // by small indices (nearby on the line).
        let sim = line_sim(50);
        let mut rng = StdRng::seed_from_u64(3);
        let mut near_hits = 0usize;
        let mut total = 0usize;
        for _ in 0..50 {
            let s = ranked_weighted_samples(&sim, 0, 5, &mut rng);
            near_hits += s.similar.iter().filter(|&&i| i <= 10).count();
            total += s.similar.len();
        }
        let frac = near_hits as f64 / total as f64;
        assert!(frac > 0.8, "only {frac:.2} of similar samples were near");
    }

    #[test]
    fn random_sampling_is_roughly_uniform() {
        let sim = line_sim(50);
        let mut rng = StdRng::seed_from_u64(4);
        let mut near_hits = 0usize;
        let mut total = 0usize;
        for _ in 0..50 {
            let s = ranked_random_samples(&sim, 0, 5, &mut rng);
            for &i in s.similar.iter().chain(&s.dissimilar) {
                if i <= 10 {
                    near_hits += 1;
                }
                total += 1;
            }
        }
        let frac = near_hits as f64 / total as f64;
        // 10 of 49 non-anchor seeds are "near" ⇒ expect ~0.2.
        assert!(
            (0.1..0.35).contains(&frac),
            "frac {frac:.2} not uniform-ish"
        );
    }

    #[test]
    fn over_asking_truncates() {
        let sim = line_sim(5);
        let mut rng = StdRng::seed_from_u64(5);
        let s = ranked_weighted_samples(&sim, 0, 10, &mut rng);
        assert_eq!(s.similar.len(), 4);
        let r = ranked_random_samples(&sim, 0, 10, &mut rng);
        assert_eq!(r.similar.len() + r.dissimilar.len(), 4);
    }

    #[test]
    fn deterministic_given_rng_seed() {
        let sim = line_sim(20);
        let a = ranked_weighted_samples(&sim, 3, 6, &mut StdRng::seed_from_u64(9));
        let b = ranked_weighted_samples(&sim, 3, 6, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
