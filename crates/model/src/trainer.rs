//! The seed-guided metric-learning training loop (§V).

use crate::backbone::{
    seq_inputs, Backbone, BackboneCache, NeuTrajModel, SamPhaseMetrics, SeqInputs,
};
use crate::checkpoint::{Checkpoint, CheckpointPolicy, TrainState};
use crate::config::TrainConfig;
use crate::loss::pair_similarity;
use crate::persist::PersistError;
use crate::sampling::{ranked_random_samples, ranked_weighted_samples, AnchorSamples};
use crate::similarity::SimilarityMatrix;
use neutraj_measures::DistanceMatrix;
use neutraj_nn::linalg::add_assign;
use neutraj_nn::Adam;
use neutraj_obs::{names, Counter, Gauge, Histogram, Registry};
use neutraj_trajectory::{Grid, Trajectory};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::path::Path;
use std::time::Instant;

/// Per-epoch statistics delivered to the training callback (drives the
/// Fig. 5 convergence curves and Table VI timing rows).
#[derive(Debug, Clone, PartialEq)]
pub struct EpochStats {
    /// 0-based epoch index.
    pub epoch: usize,
    /// Mean training loss per anchor.
    pub loss: f64,
    /// Wall-clock duration of the epoch in seconds.
    pub seconds: f64,
}

/// Summary of a completed training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Mean per-anchor loss after each epoch.
    pub epoch_losses: Vec<f64>,
    /// Wall-clock seconds per epoch.
    pub epoch_seconds: Vec<f64>,
    /// The similarity sharpness α that was used.
    pub alpha: f64,
    /// Whether early stopping fired before `epochs` completed.
    pub early_stopped: bool,
    /// Whether the run ended early because the
    /// [`CheckpointPolicy::stop`] flag was raised. An interrupted run has
    /// written a final checkpoint; continue it with [`Trainer::resume`].
    pub interrupted: bool,
}

/// Pre-resolved training-loop instruments, following the
/// `neutraj_train_*` naming convention (plus the optimizer's
/// `neutraj_nn_adam_steps_total`). Resolved once per
/// [`Trainer::with_metrics`]; the loop records at epoch/round
/// granularity, so instrumentation never touches the per-pair hot path.
#[derive(Debug, Clone)]
pub struct TrainMetrics {
    epochs_total: Counter,
    pairs_total: Counter,
    loss: Gauge,
    epoch_seconds: Histogram,
    adam_steps: Counter,
    sam: SamPhaseMetrics,
    ckpt_writes: Counter,
    ckpt_restores: Counter,
    ckpt_corruption: Counter,
    ckpt_fallback: Counter,
    ckpt_write_seconds: Histogram,
}

impl TrainMetrics {
    /// Resolves the training instruments in `registry`.
    pub fn register(registry: &Registry) -> Self {
        Self {
            epochs_total: registry.counter(names::TRAIN_EPOCHS_TOTAL),
            pairs_total: registry.counter(names::TRAIN_PAIRS_TOTAL),
            loss: registry.gauge(names::TRAIN_LOSS),
            epoch_seconds: registry.histogram(names::TRAIN_EPOCH_SECONDS),
            adam_steps: registry.counter(names::ADAM_STEPS_TOTAL),
            sam: SamPhaseMetrics::register(registry),
            ckpt_writes: registry.counter(names::CKPT_WRITES_TOTAL),
            ckpt_restores: registry.counter(names::CKPT_RESTORES_TOTAL),
            ckpt_corruption: registry.counter(names::CKPT_CORRUPTION_TOTAL),
            ckpt_fallback: registry.counter(names::CKPT_FALLBACK_TOTAL),
            ckpt_write_seconds: registry.histogram(names::CKPT_WRITE_SECONDS),
        }
    }
}

/// Trains NeuTraj (or a baseline/ablation preset) from seed guidance.
#[derive(Debug, Clone)]
pub struct Trainer {
    cfg: TrainConfig,
    grid: Grid,
    threads: usize,
    metrics: Option<TrainMetrics>,
    ckpt: Option<CheckpointPolicy>,
}

impl Trainer {
    /// Creates a trainer. Panics when `cfg` fails validation — the
    /// configuration is a programming input, not runtime data.
    pub fn new(cfg: TrainConfig, grid: Grid) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid TrainConfig: {e}");
        }
        Self {
            cfg,
            grid,
            threads: 1,
            metrics: None,
            ckpt: None,
        }
    }

    /// Writes crash-safe checkpoints at epoch boundaries according to
    /// `policy` (see [`CheckpointPolicy`]). Checkpointing is observational
    /// — training results are bit-identical with or without it — and an
    /// interrupted run continued with [`Trainer::resume`] produces the
    /// exact same final parameters as an uninterrupted one.
    pub fn with_checkpoints(mut self, policy: CheckpointPolicy) -> Self {
        self.ckpt = Some(policy);
        self
    }

    /// Records training metrics into `registry`: per-epoch loss and
    /// wall-clock, cumulative training-pair and optimizer-step counters,
    /// and per-phase timings of the two-phase SAM protocol. Metrics are
    /// observational only — [`Trainer::fit`] results are bit-identical
    /// with metrics on or off.
    pub fn with_metrics(mut self, registry: &Registry) -> Self {
        self.metrics = Some(TrainMetrics::register(registry));
        self
    }

    /// Enables multi-threaded forward/BPTT within each batch.
    ///
    /// Every backbone parallelizes both passes. Memory-free backbones
    /// (plain LSTM / GRU) fan sequences straight out; the SAM backbone
    /// runs the two-phase memory protocol in fixed rounds — parallel
    /// forwards against the round-start memory snapshot with buffered
    /// writes, then a single-threaded ordered commit at every round
    /// boundary. Gradients are reduced in fixed-size groups merged in a
    /// fixed order. Both schemes are functions of the batch alone, so
    /// training results are **bit-identical** for every thread count
    /// (see `DESIGN.md`, "Threading & determinism").
    ///
    /// Because results do not depend on the worker count, the trainer
    /// clamps `threads` to the host's available parallelism — requesting
    /// more threads than cores would only add scheduling overhead, never
    /// change the output.
    pub fn with_threads(mut self, threads: usize) -> Self {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        self.threads = threads.clamp(1, cores);
        self
    }

    /// The configuration this trainer runs.
    pub fn config(&self) -> &TrainConfig {
        &self.cfg
    }

    /// Fits a model to `seeds` whose pairwise distances are `dist`
    /// (already computed under the target measure, on trajectories
    /// rescaled to grid units — see [`Grid::rescale_trajectory`]).
    ///
    /// `on_epoch` is invoked after every epoch with loss/time stats.
    ///
    /// Panics when `seeds` is empty, `dist` does not match its length, or
    /// a checkpoint write requested via [`Trainer::with_checkpoints`]
    /// fails (an unwritable checkpoint directory is an environment error
    /// on par with an invalid config, and silently continuing would give
    /// false confidence of crash-safety).
    pub fn fit(
        &self,
        seeds: &[Trajectory],
        dist: &DistanceMatrix,
        on_epoch: impl FnMut(&EpochStats),
    ) -> (NeuTrajModel, TrainReport) {
        self.fit_inner(None, seeds, dist, on_epoch)
            .unwrap_or_else(|e| panic!("checkpoint write failed: {e}"))
    }

    /// Continues an interrupted (or merely checkpointed) training run.
    ///
    /// `path` is either a single checkpoint file or a checkpoint
    /// directory; given a directory, the newest checkpoint that passes
    /// verification wins — damaged ones are skipped (counted through
    /// `neutraj_ckpt_corruption_total` / `neutraj_ckpt_fallback_total`
    /// when metrics are attached). `seeds` and `dist` must be the same
    /// data the original run was fitted on; the checkpoint's config and
    /// grid are checked against this trainer's and a mismatch is rejected.
    ///
    /// Resuming is **bit-identical**: interrupt-at-any-boundary then
    /// resume yields exactly the final parameters of an uninterrupted
    /// run (the per-epoch RNG is reseeded from the epoch index alone and
    /// the SAM memory is rebuilt at every epoch start, so the checkpoint
    /// state is the *complete* remaining-run input).
    pub fn resume<P: AsRef<Path>>(
        &self,
        path: P,
        seeds: &[Trajectory],
        dist: &DistanceMatrix,
        on_epoch: impl FnMut(&EpochStats),
    ) -> Result<(NeuTrajModel, TrainReport), PersistError> {
        let path = path.as_ref();
        let ckpt = if path.is_dir() {
            let found = Checkpoint::load_newest_valid(path, |_, _| {
                if let Some(m) = &self.metrics {
                    m.ckpt_corruption.inc();
                }
            })?;
            match found {
                None => {
                    return Err(PersistError::Format(format!(
                        "no checkpoint files in {}",
                        path.display()
                    )))
                }
                Some((c, skipped)) => {
                    if skipped > 0 {
                        if let Some(m) = &self.metrics {
                            m.ckpt_fallback.inc();
                        }
                    }
                    c
                }
            }
        } else {
            Checkpoint::load(path).inspect_err(|e| {
                if matches!(e, PersistError::Corrupted(_)) {
                    if let Some(m) = &self.metrics {
                        m.ckpt_corruption.inc();
                    }
                }
            })?
        };
        if ckpt.model.config() != &self.cfg {
            return Err(PersistError::Format(
                "checkpoint was written under a different training configuration".into(),
            ));
        }
        if ckpt.model.grid() != &self.grid {
            return Err(PersistError::Format(
                "checkpoint grid does not match this trainer's grid".into(),
            ));
        }
        if let Some(m) = &self.metrics {
            m.ckpt_restores.inc();
        }
        self.fit_inner(Some(ckpt), seeds, dist, on_epoch)
    }

    /// The shared training loop behind [`Trainer::fit`] (fresh start) and
    /// [`Trainer::resume`] (`start` carries the checkpointed model +
    /// state). Only checkpoint I/O and checkpoint-state validation can
    /// produce an `Err`.
    fn fit_inner(
        &self,
        start: Option<Checkpoint>,
        seeds: &[Trajectory],
        dist: &DistanceMatrix,
        mut on_epoch: impl FnMut(&EpochStats),
    ) -> Result<(NeuTrajModel, TrainReport), PersistError> {
        assert!(!seeds.is_empty(), "need at least one seed trajectory");
        assert_eq!(dist.n(), seeds.len(), "distance matrix/seed count mismatch");
        if let Some(pos) = seeds.iter().position(|t| t.is_empty()) {
            panic!(
                "seed trajectory at index {pos} is empty (id {})",
                seeds[pos].id
            );
        }
        let cfg = &self.cfg;
        let sim = {
            // On resume the stored α wins: the original run may have used
            // auto-α, and the remaining epochs must see the same matrix.
            let alpha = match &start {
                Some(c) => c.state.alpha,
                None => cfg
                    .alpha
                    .unwrap_or_else(|| SimilarityMatrix::auto_alpha(dist)),
            };
            SimilarityMatrix::with_normalization(dist, alpha, cfg.normalization)
        };
        // Precompute network inputs for every seed once.
        let inputs: Vec<SeqInputs> = seeds.iter().map(|t| seq_inputs(&self.grid, t)).collect();

        let (mut backbone, state) = match start {
            Some(c) => {
                let (backbone, _grid, _cfg) = c.model.into_parts();
                (backbone, Some(c.state))
            }
            None => (Backbone::build(cfg, &self.grid), None),
        };
        let mut adam = Adam::new(cfg.lr);
        if let Some(m) = &self.metrics {
            adam.instrument(m.adam_steps.clone());
        }
        let slots = backbone.register_adam(&mut adam);
        if let Some(st) = &state {
            adam.import_state(&st.adam).map_err(|e| {
                PersistError::Format(format!("checkpoint optimizer state rejected: {e}"))
            })?;
        }
        let mut grads = backbone.zero_grads();

        let n_seeds = seeds.len();
        let mut report = TrainReport {
            epoch_losses: state.as_ref().map_or_else(
                || Vec::with_capacity(cfg.epochs),
                |st| st.epoch_losses.clone(),
            ),
            epoch_seconds: state.as_ref().map_or_else(
                || Vec::with_capacity(cfg.epochs),
                |st| st.epoch_seconds.clone(),
            ),
            alpha: sim.alpha(),
            early_stopped: state.as_ref().is_some_and(|st| st.early_stopped),
            interrupted: false,
        };
        let mut best_loss = state.as_ref().map_or(f64::INFINITY, |st| st.best_loss);
        let mut stale = state.as_ref().map_or(0, |st| st.stale);
        // A run whose checkpoint already recorded early stopping has
        // nothing left to train — skip straight to the memory refresh.
        let start_epoch = match &state {
            Some(st) if st.early_stopped => cfg.epochs,
            Some(st) => st.next_epoch,
            None => 0,
        };
        let mut last_ckpt = Instant::now();

        for epoch in start_epoch..cfg.epochs {
            let t0 = Instant::now();
            // Fresh memory every epoch: stored cell embeddings then always
            // reflect the current parameters (stale entries from many
            // updates ago act as noise in the attention read).
            backbone.reset_memory();
            let mut rng = StdRng::seed_from_u64(
                cfg.seed ^ (epoch as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            // The anchor order is a function of the epoch index alone
            // (identity permutation reshuffled with the per-epoch RNG), so
            // a resumed run sees exactly the schedule the uninterrupted
            // run would have — carrying the shuffled order across epochs
            // would make epoch k depend on every earlier epoch's shuffle.
            let mut order: Vec<usize> = (0..n_seeds).collect();
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0;

            for batch in order.chunks(cfg.batch_anchors) {
                // 1. Sample pair lists for every anchor in the batch.
                let samples: Vec<AnchorSamples> = batch
                    .iter()
                    .map(|&a| {
                        if cfg.weighted_sampling {
                            ranked_weighted_samples(&sim, a, cfg.n_samples, &mut rng)
                        } else {
                            ranked_random_samples(&sim, a, cfg.n_samples, &mut rng)
                        }
                    })
                    .collect();

                // 2. Embed every distinct trajectory the batch touches.
                //    Deterministic ascending order keeps SAM memory writes
                //    reproducible.
                let mut involved: Vec<usize> = samples
                    .iter()
                    .flat_map(|s| {
                        std::iter::once(s.anchor)
                            .chain(s.similar.iter().copied())
                            .chain(s.dissimilar.iter().copied())
                    })
                    .collect();
                involved.sort_unstable();
                involved.dedup();

                if let Some(m) = &self.metrics {
                    let pairs: usize = samples
                        .iter()
                        .map(|s| s.similar.len() + s.dissimilar.len())
                        .sum();
                    m.pairs_total.add(pairs as u64);
                }

                let batch_inputs: Vec<&SeqInputs> =
                    involved.iter().map(|&idx| &inputs[idx]).collect();
                let results = backbone.forward_train_batch_metered(
                    &batch_inputs,
                    self.threads,
                    self.metrics.as_ref().map(|m| &m.sam),
                );
                let mut embeddings: BTreeMap<usize, Vec<f64>> = BTreeMap::new();
                let mut caches: BTreeMap<usize, BackboneCache> = BTreeMap::new();
                for (&idx, (emb, cache)) in involved.iter().zip(results) {
                    embeddings.insert(idx, emb);
                    caches.insert(idx, cache);
                }

                // 3. Pair losses → embedding gradients.
                let mut d_emb: BTreeMap<usize, Vec<f64>> =
                    involved.iter().map(|&i| (i, vec![0.0; cfg.dim])).collect();
                let mut batch_loss = 0.0;
                for s in &samples {
                    let anchor_emb = embeddings[&s.anchor].clone();
                    for (list, dissimilar) in [(&s.similar, false), (&s.dissimilar, true)] {
                        let sample_embs: Vec<&[f64]> =
                            list.iter().map(|&i| embeddings[&i].as_slice()).collect();
                        let targets: Vec<f64> =
                            list.iter().map(|&i| sim.get(s.anchor, i)).collect();
                        let pair_losses = if dissimilar {
                            cfg.loss
                                .dissimilar_list(&anchor_emb, &sample_embs, &targets)
                        } else {
                            cfg.loss.similar_list(&anchor_emb, &sample_embs, &targets)
                        };
                        for (pl, &i) in pair_losses.iter().zip(list) {
                            batch_loss += pl.loss;
                            add_assign(
                                d_emb.get_mut(&s.anchor).expect("anchor embedded"),
                                &pl.d_anchor,
                            );
                            add_assign(d_emb.get_mut(&i).expect("sample embedded"), &pl.d_sample);
                        }
                    }
                }
                epoch_loss += batch_loss;

                // 4. BPTT per trajectory, then one optimizer step.
                grads.fill_zero();
                let jobs: Vec<(&BackboneCache, &[f64])> = involved
                    .iter()
                    .filter(|&&idx| d_emb[&idx].iter().any(|v| *v != 0.0))
                    .map(|&idx| (&caches[&idx], d_emb[&idx].as_slice()))
                    .collect();
                backbone.backward_batch(&jobs, &mut grads, self.threads);
                adam.next_step();
                backbone.adam_step(&mut adam, &slots, &grads, 1.0 / batch.len() as f64);
            }

            let loss = epoch_loss / n_seeds as f64;
            let seconds = t0.elapsed().as_secs_f64();
            if let Some(m) = &self.metrics {
                m.epochs_total.inc();
                m.loss.set(loss);
                m.epoch_seconds.observe(seconds);
            }
            report.epoch_losses.push(loss);
            report.epoch_seconds.push(seconds);
            on_epoch(&EpochStats {
                epoch,
                loss,
                seconds,
            });

            if let Some(patience) = cfg.patience {
                if loss + 1e-12 < best_loss {
                    best_loss = loss;
                    stale = 0;
                } else {
                    stale += 1;
                    if stale >= patience {
                        report.early_stopped = true;
                    }
                }
            } else {
                best_loss = best_loss.min(loss);
            }

            // Epoch boundary: everything the rest of the run depends on is
            // now in (backbone, adam, report, best_loss, stale).
            if let Some(policy) = &self.ckpt {
                let stop = policy.stop_requested();
                if stop || policy.due(epoch + 1, last_ckpt.elapsed().as_secs_f64()) {
                    self.write_checkpoint(
                        policy,
                        &backbone,
                        &adam,
                        &report,
                        best_loss,
                        stale,
                        epoch + 1,
                    )?;
                    last_ckpt = Instant::now();
                }
                if stop && !report.early_stopped {
                    report.interrupted = true;
                    break;
                }
            }
            if report.early_stopped {
                break;
            }
        }

        // Final memory refresh: repopulate the spatial memory with one
        // coherent writing pass over every seed under the *final*
        // parameters, in a fixed order, so inference reads a memory whose
        // contents match the trained encoder.
        if backbone.has_memory() {
            backbone.reset_memory();
            for (coords, cells) in &inputs {
                let _ = backbone.forward_train(coords, cells);
            }
        }

        Ok((
            NeuTrajModel::new(backbone, self.grid.clone(), cfg.clone()),
            report,
        ))
    }

    /// Writes one checkpoint for the boundary after `epochs_done`
    /// completed epochs, then applies the retention policy.
    #[allow(clippy::too_many_arguments)]
    fn write_checkpoint(
        &self,
        policy: &CheckpointPolicy,
        backbone: &Backbone,
        adam: &Adam,
        report: &TrainReport,
        best_loss: f64,
        stale: usize,
        epochs_done: usize,
    ) -> Result<(), PersistError> {
        let span = self
            .metrics
            .as_ref()
            .map(|m| m.ckpt_write_seconds.start_timer());
        std::fs::create_dir_all(&policy.dir)?;
        let ckpt = Checkpoint {
            model: NeuTrajModel::new(backbone.clone(), self.grid.clone(), self.cfg.clone()),
            state: TrainState {
                next_epoch: epochs_done,
                early_stopped: report.early_stopped,
                best_loss,
                stale,
                alpha: report.alpha,
                epoch_losses: report.epoch_losses.clone(),
                epoch_seconds: report.epoch_seconds.clone(),
                adam: adam.export_state(),
            },
        };
        ckpt.save(policy.dir.join(Checkpoint::file_name(epochs_done)))?;
        policy.prune();
        drop(span);
        if let Some(m) = &self.metrics {
            m.ckpt_writes.inc();
        }
        Ok(())
    }
}

/// Convenience: how well a model's learned similarity matches seed ground
/// truth — mean squared error of `g` vs `S` over all seed pairs. Used by
/// validation-loss tracking in experiments.
pub fn seed_mse(model: &NeuTrajModel, seeds: &[Trajectory], sim: &SimilarityMatrix) -> f64 {
    let embs = model.embed_all(seeds, 1);
    let n = seeds.len();
    let mut sum = 0.0;
    let mut cnt = 0usize;
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let g = pair_similarity(&embs[i], &embs[j]);
            let f = sim.get(i, j);
            sum += (g - f) * (g - f);
            cnt += 1;
        }
    }
    if cnt == 0 {
        0.0
    } else {
        sum / cnt as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neutraj_measures::Hausdorff;
    use neutraj_trajectory::{gen::PortoLikeGenerator, Dataset};

    fn tiny_world() -> (Grid, Vec<Trajectory>, DistanceMatrix) {
        let ds: Dataset = PortoLikeGenerator {
            num_trajectories: 30,
            num_templates: 6,
            max_len: 30,
            ..Default::default()
        }
        .generate(11);
        let grid = Grid::covering(ds.trajectories(), 100.0).unwrap();
        let seeds: Vec<Trajectory> = ds.trajectories().to_vec();
        let rescaled: Vec<Trajectory> = seeds.iter().map(|t| grid.rescale_trajectory(t)).collect();
        let dist = DistanceMatrix::compute(&Hausdorff, &rescaled);
        (grid, seeds, dist)
    }

    fn fast_cfg() -> TrainConfig {
        TrainConfig {
            dim: 8,
            n_samples: 4,
            batch_anchors: 10,
            epochs: 3,
            ..TrainConfig::neutraj()
        }
    }

    #[test]
    fn training_reduces_loss() {
        let (grid, seeds, dist) = tiny_world();
        let mut stats = Vec::new();
        let (_, report) = Trainer::new(fast_cfg(), grid).fit(&seeds, &dist, |s| {
            stats.push(s.clone());
        });
        assert_eq!(report.epoch_losses.len(), 3);
        assert_eq!(stats.len(), 3);
        assert!(
            report.epoch_losses[2] < report.epoch_losses[0],
            "loss did not decrease: {:?}",
            report.epoch_losses
        );
        assert!(report.epoch_losses.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn training_is_deterministic() {
        let (grid, seeds, dist) = tiny_world();
        let (m1, r1) = Trainer::new(fast_cfg(), grid.clone()).fit(&seeds, &dist, |_| {});
        let (m2, r2) = Trainer::new(fast_cfg(), grid).fit(&seeds, &dist, |_| {});
        assert_eq!(r1.epoch_losses, r2.epoch_losses);
        assert_eq!(m1.embed(&seeds[0]), m2.embed(&seeds[0]));
    }

    #[test]
    fn all_presets_train() {
        let (grid, seeds, dist) = tiny_world();
        for preset in [
            TrainConfig::neutraj(),
            TrainConfig::nt_no_sam(),
            TrainConfig::nt_no_ws(),
            TrainConfig::siamese(),
        ] {
            let cfg = TrainConfig {
                dim: 8,
                n_samples: 3,
                epochs: 1,
                ..preset
            };
            let name = cfg.method_name();
            let (model, report) = Trainer::new(cfg, grid.clone()).fit(&seeds, &dist, |_| {});
            assert_eq!(report.epoch_losses.len(), 1, "{name}");
            assert!(report.epoch_losses[0].is_finite(), "{name}");
            assert!(
                model.embed(&seeds[1]).iter().all(|v| v.is_finite()),
                "{name}"
            );
        }
    }

    #[test]
    fn learned_similarity_correlates_with_ground_truth() {
        // After a few epochs the embedding distance ordering should agree
        // with the exact measure far better than chance: check Spearman-ish
        // sign agreement over sampled pairs.
        let (grid, seeds, dist) = tiny_world();
        let cfg = TrainConfig {
            dim: 16,
            epochs: 10,
            n_samples: 6,
            ..TrainConfig::neutraj()
        };
        let (model, _) = Trainer::new(cfg, grid).fit(&seeds, &dist, |_| {});
        let embs = model.embed_all(&seeds, 2);
        let mut agree = 0usize;
        let mut total = 0usize;
        for a in 0..seeds.len() {
            for i in 0..seeds.len() {
                for j in (i + 1)..seeds.len() {
                    if i == a || j == a {
                        continue;
                    }
                    let truth = dist.get(a, i) < dist.get(a, j);
                    let learned = neutraj_nn::linalg::euclidean(&embs[a], &embs[i])
                        < neutraj_nn::linalg::euclidean(&embs[a], &embs[j]);
                    if truth == learned {
                        agree += 1;
                    }
                    total += 1;
                }
            }
        }
        let acc = agree as f64 / total as f64;
        assert!(acc > 0.65, "pairwise order agreement only {acc:.3}");
    }

    #[test]
    fn parallel_training_matches_sequential() {
        let (grid, seeds, dist) = tiny_world();
        for preset in [TrainConfig::nt_no_sam(), TrainConfig::neutraj()] {
            let cfg = TrainConfig {
                dim: 8,
                epochs: 2,
                n_samples: 4,
                ..preset
            };
            let name = cfg.method_name();
            let (m1, r1) = Trainer::new(cfg.clone(), grid.clone()).fit(&seeds, &dist, |_| {});
            let (m4, r4) =
                Trainer::new(cfg, grid.clone())
                    .with_threads(4)
                    .fit(&seeds, &dist, |_| {});
            // Two-phase forwards + fixed-group gradient reduction make the
            // whole run a function of the batch alone: bit-identical.
            assert_eq!(r1.epoch_losses, r4.epoch_losses, "{name}: losses diverged");
            assert_eq!(
                m1.embed(&seeds[0]),
                m4.embed(&seeds[0]),
                "{name}: embeddings diverged"
            );
        }
    }

    #[test]
    fn early_stopping_fires() {
        let (grid, seeds, dist) = tiny_world();
        let cfg = TrainConfig {
            dim: 8,
            epochs: 50,
            lr: 1e-9, // effectively frozen ⇒ loss cannot improve
            patience: Some(2),
            ..TrainConfig::neutraj()
        };
        let (_, report) = Trainer::new(cfg, grid).fit(&seeds, &dist, |_| {});
        assert!(report.early_stopped);
        assert!(report.epoch_losses.len() < 50);
    }

    #[test]
    fn instrumented_training_records_metrics_without_changing_results() {
        let (grid, seeds, dist) = tiny_world();
        let cfg = TrainConfig {
            dim: 8,
            epochs: 3,
            n_samples: 4,
            ..TrainConfig::neutraj()
        };
        let registry = Registry::new();
        let (m_on, r_on) = Trainer::new(cfg.clone(), grid.clone())
            .with_metrics(&registry)
            .fit(&seeds, &dist, |_| {});
        let (m_off, r_off) = Trainer::new(cfg, grid).fit(&seeds, &dist, |_| {});

        // Instrumentation is observation-only: bit-identical training.
        assert_eq!(r_on.epoch_losses, r_off.epoch_losses);
        assert_eq!(m_on.embed(&seeds[0]), m_off.embed(&seeds[0]));

        assert_eq!(registry.counter("neutraj_train_epochs_total").get(), 3);
        assert!(registry.counter("neutraj_train_pairs_total").get() > 0);
        assert!(registry.counter("neutraj_nn_adam_steps_total").get() > 0);
        let loss = registry.gauge("neutraj_train_loss").get();
        assert_eq!(loss, *r_on.epoch_losses.last().unwrap());
        assert_eq!(registry.histogram("neutraj_train_epoch_seconds").count(), 3);
        // The neutraj preset uses the SAM backbone, so both phases ran.
        assert!(
            registry
                .histogram("neutraj_train_sam_phase_a_seconds")
                .count()
                > 0
        );
        assert!(
            registry
                .histogram("neutraj_train_sam_phase_b_seconds")
                .count()
                > 0
        );
    }

    #[test]
    #[should_panic(expected = "invalid TrainConfig")]
    fn invalid_config_panics() {
        let (grid, _, _) = tiny_world();
        let cfg = TrainConfig {
            dim: 0,
            ..TrainConfig::neutraj()
        };
        let _ = Trainer::new(cfg, grid);
    }

    #[test]
    #[should_panic(expected = "is empty")]
    fn empty_seed_trajectory_rejected_with_clear_message() {
        let (grid, mut seeds, _) = tiny_world();
        seeds[3] = Trajectory::new_unchecked(999, vec![]);
        let dist = DistanceMatrix::from_raw(seeds.len(), vec![0.0; seeds.len() * seeds.len()]);
        let _ = Trainer::new(fast_cfg(), grid).fit(&seeds, &dist, |_| {});
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn mismatched_distance_matrix_panics() {
        let (grid, seeds, _) = tiny_world();
        let bad = DistanceMatrix::from_raw(2, vec![0.0; 4]);
        let _ = Trainer::new(fast_cfg(), grid).fit(&seeds, &bad, |_| {});
    }
}
