//! The distance-weighted ranking loss (§V-B, Eqs. 8–9) — the paper's
//! second novel module — plus the plain MSE variant the Siamese baseline
//! uses.

use neutraj_nn::linalg::axpy;

/// Similarity of two embeddings: `g(Ti,Tj) = exp(-‖E_i − E_j‖)` (Eq. 7).
pub fn pair_similarity(ea: &[f64], eb: &[f64]) -> f64 {
    (-neutraj_nn::linalg::euclidean(ea, eb)).exp()
}

/// Loss value and embedding gradients of a single (anchor, sample) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct PairLoss {
    /// The (already weighted) scalar loss contribution.
    pub loss: f64,
    /// Gradient w.r.t. the anchor embedding.
    pub d_anchor: Vec<f64>,
    /// Gradient w.r.t. the sample embedding.
    pub d_sample: Vec<f64>,
}

/// Configuration of the pairwise ranking loss.
///
/// * NeuTraj (and both ablations): `rank_weighted = true`,
///   `margin_dissimilar = true`.
/// * Siamese baseline: both `false` — every pair carries uniform weight
///   and both sides regress the target similarity with plain MSE.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankedBatchLoss {
    /// Weight pair `l` by the normalized `1/l` (Mean-Reciprocal-Rank
    /// inspired) instead of `1/n`.
    pub rank_weighted: bool,
    /// Use the squared-ReLU margin loss on dissimilar pairs (Eq. 9)
    /// instead of plain MSE.
    pub margin_dissimilar: bool,
}

impl RankedBatchLoss {
    /// The paper's loss configuration.
    pub fn neutraj() -> Self {
        Self {
            rank_weighted: true,
            margin_dissimilar: true,
        }
    }

    /// The Siamese baseline's loss configuration.
    pub fn siamese() -> Self {
        Self {
            rank_weighted: false,
            margin_dissimilar: false,
        }
    }

    /// Normalized ranking weights `r = (1, 1/2, …, 1/n) / Σ` (§V-B), or
    /// uniform `1/n` when rank weighting is off.
    pub fn rank_weights(&self, n: usize) -> Vec<f64> {
        if n == 0 {
            return Vec::new();
        }
        if !self.rank_weighted {
            return vec![1.0 / n as f64; n];
        }
        let raw: Vec<f64> = (1..=n).map(|l| 1.0 / l as f64).collect();
        let sum: f64 = raw.iter().sum();
        raw.into_iter().map(|r| r / sum).collect()
    }

    /// Loss of the similar list `L_a^s` (Eq. 8): weighted MSE between the
    /// embedding similarity and the seed similarity, pair `l` weighted by
    /// `r_l`. `targets[l]` is `f(T_a, T_l^s)` from **S**; `samples[l]` the
    /// embedding of `T_l^s`. Returns per-pair losses + gradients.
    pub fn similar_list(
        &self,
        anchor: &[f64],
        samples: &[&[f64]],
        targets: &[f64],
    ) -> Vec<PairLoss> {
        assert_eq!(samples.len(), targets.len(), "samples/targets mismatch");
        let w = self.rank_weights(samples.len());
        samples
            .iter()
            .zip(targets)
            .zip(w)
            .map(|((s, &f), wl)| pair_loss(anchor, s, f, wl, false))
            .collect()
    }

    /// Loss of the dissimilar list `L_a^d` (Eq. 9): squared-ReLU margin —
    /// zero when the pair is already far enough apart in embedding space
    /// (`g < f`), quadratic when the embedding oversells the similarity.
    pub fn dissimilar_list(
        &self,
        anchor: &[f64],
        samples: &[&[f64]],
        targets: &[f64],
    ) -> Vec<PairLoss> {
        assert_eq!(samples.len(), targets.len(), "samples/targets mismatch");
        let w = self.rank_weights(samples.len());
        samples
            .iter()
            .zip(targets)
            .zip(w)
            .map(|((s, &f), wl)| pair_loss(anchor, s, f, wl, self.margin_dissimilar))
            .collect()
    }
}

/// One weighted pair loss with analytic embedding gradients.
///
/// `margin = false`: `L = w (g − f)²`. `margin = true`:
/// `L = w·ReLU(g − f)²`. With `g = exp(-‖u‖)`, `u = E_a − E_b`:
/// `∂g/∂E_a = −g·u/‖u‖`, `∂g/∂E_b = +g·u/‖u‖` (zero subgradient at
/// `u = 0`).
fn pair_loss(anchor: &[f64], sample: &[f64], target: f64, weight: f64, margin: bool) -> PairLoss {
    let d = anchor.len();
    debug_assert_eq!(sample.len(), d);
    let mut u: Vec<f64> = anchor.iter().zip(sample).map(|(a, b)| a - b).collect();
    let r = neutraj_nn::linalg::norm(&u);
    let g = (-r).exp();
    let diff = g - target;
    let (loss, dl_dg) = if margin && diff <= 0.0 {
        (0.0, 0.0)
    } else {
        (weight * diff * diff, 2.0 * weight * diff)
    };
    let mut d_anchor = vec![0.0; d];
    let mut d_sample = vec![0.0; d];
    if dl_dg != 0.0 && r > 0.0 {
        // ∂L/∂E_a = dl_dg · (−g/r) · u.
        let scale = -dl_dg * g / r;
        for v in &mut u {
            *v *= scale;
        }
        axpy(&mut d_anchor, 1.0, &u);
        axpy(&mut d_sample, -1.0, &u);
    }
    PairLoss {
        loss,
        d_anchor,
        d_sample,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neutraj_nn::gradcheck::check_gradient;

    #[test]
    fn pair_similarity_range_and_identity() {
        let a = vec![0.1, -0.5, 2.0];
        assert_eq!(pair_similarity(&a, &a), 1.0);
        let b = vec![3.0, 0.0, 0.0];
        let g = pair_similarity(&a, &b);
        assert!(g > 0.0 && g < 1.0);
        // Farther apart ⇒ smaller similarity.
        let c = vec![30.0, 0.0, 0.0];
        assert!(pair_similarity(&a, &c) < g);
    }

    #[test]
    fn rank_weights_normalized_and_decreasing() {
        let l = RankedBatchLoss::neutraj();
        let w = l.rank_weights(5);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        for pair in w.windows(2) {
            assert!(pair[0] > pair[1]);
        }
        assert!((w[0] / w[1] - 2.0).abs() < 1e-12); // 1 vs 1/2
        let u = RankedBatchLoss::siamese().rank_weights(4);
        assert!(u.iter().all(|&x| (x - 0.25).abs() < 1e-12));
        assert!(l.rank_weights(0).is_empty());
    }

    #[test]
    fn margin_loss_is_zero_when_separated() {
        // g < f  ⇒ already far enough apart, no loss, no gradient.
        let anchor = vec![0.0, 0.0];
        let sample = vec![5.0, 0.0]; // g = exp(-5) ≈ 0.0067
        let l = RankedBatchLoss::neutraj();
        let out = l.dissimilar_list(&anchor, &[&sample], &[0.5]);
        assert_eq!(out[0].loss, 0.0);
        assert!(out[0].d_anchor.iter().all(|v| *v == 0.0));
        // But the similar-side loss for the same pair is positive.
        let out = l.similar_list(&anchor, &[&sample], &[0.5]);
        assert!(out[0].loss > 0.0);
    }

    #[test]
    fn margin_activates_when_too_close() {
        let anchor = vec![0.0, 0.0];
        let sample = vec![0.1, 0.0]; // g ≈ 0.905 > f
        let l = RankedBatchLoss::neutraj();
        let out = l.dissimilar_list(&anchor, &[&sample], &[0.2]);
        assert!(out[0].loss > 0.0);
        assert!(out[0].d_anchor.iter().any(|v| *v != 0.0));
    }

    #[test]
    fn identical_embeddings_have_zero_gradient() {
        let a = vec![1.0, 2.0];
        let out = RankedBatchLoss::neutraj().similar_list(&a, &[&a.clone()], &[0.3]);
        // Loss is (1 - 0.3)² but the subgradient at u = 0 is 0.
        assert!(out[0].loss > 0.0);
        assert!(out[0].d_anchor.iter().all(|v| *v == 0.0));
    }

    #[test]
    fn grad_check_similar_pair() {
        let loss_cfg = RankedBatchLoss::neutraj();
        let anchor = vec![0.3, -0.7, 1.2];
        let sample = vec![-0.1, 0.4, 0.9];
        let target = 0.35;
        let out = loss_cfg.similar_list(&anchor, &[&sample], &[target]);

        // Check gradient w.r.t. the anchor.
        let mut p = anchor.clone();
        check_gradient(&mut p, &out[0].d_anchor, 1e-6, 1e-6, |p| {
            loss_cfg.similar_list(p, &[&sample], &[target])[0].loss
        });
        // And w.r.t. the sample.
        let mut p = sample.clone();
        check_gradient(&mut p, &out[0].d_sample, 1e-6, 1e-6, |p| {
            loss_cfg.similar_list(&anchor, &[p], &[target])[0].loss
        });
    }

    #[test]
    fn grad_check_dissimilar_margin_pair() {
        let loss_cfg = RankedBatchLoss::neutraj();
        let anchor = vec![0.0, 0.1];
        let sample = vec![0.2, -0.1]; // close ⇒ margin active
        let target = 0.1;
        let out = loss_cfg.dissimilar_list(&anchor, &[&sample], &[target]);
        assert!(out[0].loss > 0.0);
        let mut p = anchor.clone();
        check_gradient(&mut p, &out[0].d_anchor, 1e-6, 1e-6, |p| {
            loss_cfg.dissimilar_list(p, &[&sample], &[target])[0].loss
        });
    }

    #[test]
    fn rank_weighting_prioritizes_first_pair() {
        let cfg = RankedBatchLoss::neutraj();
        let anchor = vec![0.0, 0.0];
        let s1 = vec![1.0, 0.0];
        let s2 = vec![1.0, 0.0];
        // Identical geometry, same target: only the rank weight differs.
        let out = cfg.similar_list(&anchor, &[&s1, &s2], &[0.9, 0.9]);
        assert!(out[0].loss > out[1].loss);
        assert!((out[0].loss / out[1].loss - 2.0).abs() < 1e-9);
    }
}
