//! Training configuration and the paper's method presets.

use crate::loss::RankedBatchLoss;
use crate::similarity::Normalization;

/// Which recurrent backbone encodes trajectories.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackboneKind {
    /// The SAM-augmented LSTM (the paper's encoder, §IV).
    SamLstm,
    /// A standard LSTM (Siamese baseline / NT-No-SAM ablation).
    Lstm,
    /// A GRU (beyond-paper backbone option).
    Gru,
}

/// Full training configuration for [`crate::Trainer`].
///
/// Defaults (via [`TrainConfig::neutraj`]) follow §VII-A.5 scaled to CPU:
/// the paper uses `d = 128`, `w = 2`, batch size 20 and sampling size
/// `n = 10` on a P100 GPU; the reproduction defaults to `d = 32` which
/// trains in seconds-to-minutes on a laptop while preserving every
/// qualitative result. Benchmarks sweep `d` up to 128 (Fig. 7).
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Embedding / hidden dimensionality `d`.
    pub dim: usize,
    /// SAM scan half-width `w` (ignored by non-SAM backbones).
    pub scan_width: u32,
    /// Encoder architecture.
    pub backbone: BackboneKind,
    /// Distance-weighted sampling (`false` = uniform random, NT-No-WS).
    pub weighted_sampling: bool,
    /// Pairwise loss shape (rank weighting + dissimilar margin).
    pub loss: RankedBatchLoss,
    /// Samples per side `n`: each anchor trains against `n` similar and
    /// `n` dissimilar seeds.
    pub n_samples: usize,
    /// Anchors per optimizer step (paper batch size: 20).
    pub batch_anchors: usize,
    /// Training epochs (each epoch visits every seed once as anchor).
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Similarity sharpness `α`; `None` picks it automatically
    /// ([`crate::SimilarityMatrix::auto`]).
    pub alpha: Option<f64>,
    /// How distances become similarity targets. [`Normalization::ExpDecay`]
    /// (symmetric) is the default; the paper text's row-softmax is kept as
    /// an ablation option (see `DESIGN.md` §2).
    pub normalization: Normalization,
    /// RNG seed for weight init and sampling.
    pub seed: u64,
    /// Stop early when the epoch loss has not improved for this many
    /// consecutive epochs (`None` = always run all epochs).
    pub patience: Option<usize>,
}

impl TrainConfig {
    /// The full NeuTraj configuration (§V).
    pub fn neutraj() -> Self {
        Self {
            dim: 32,
            scan_width: 2,
            backbone: BackboneKind::SamLstm,
            weighted_sampling: true,
            loss: RankedBatchLoss::neutraj(),
            n_samples: 10,
            batch_anchors: 20,
            epochs: 15,
            lr: 0.008,
            alpha: None,
            normalization: Normalization::ExpDecay,
            seed: 2019,
            patience: None,
        }
    }

    /// NT-No-SAM ablation: SAM unit replaced by a standard LSTM
    /// (§VII-A.3).
    pub fn nt_no_sam() -> Self {
        Self {
            backbone: BackboneKind::Lstm,
            ..Self::neutraj()
        }
    }

    /// NT-No-WS ablation: distance-weighted sampling replaced by random
    /// sampling (§VII-A.3).
    pub fn nt_no_ws() -> Self {
        Self {
            weighted_sampling: false,
            ..Self::neutraj()
        }
    }

    /// The Siamese-network baseline (Pei et al.): LSTM backbone, random
    /// pair sampling, uniform-weight MSE regression of the similarity.
    pub fn siamese() -> Self {
        Self {
            backbone: BackboneKind::Lstm,
            weighted_sampling: false,
            loss: RankedBatchLoss::siamese(),
            ..Self::neutraj()
        }
    }

    /// Human-readable method name matching the paper's tables.
    pub fn method_name(&self) -> &'static str {
        match (
            self.backbone,
            self.weighted_sampling,
            self.loss.rank_weighted,
        ) {
            (BackboneKind::SamLstm, true, _) => "NeuTraj",
            (BackboneKind::SamLstm, false, _) => "NT-No-WS",
            (BackboneKind::Lstm, true, _) => "NT-No-SAM",
            (BackboneKind::Lstm, false, true) => "NT-No-SAM-No-WS",
            (BackboneKind::Lstm, false, false) => "Siamese",
            (BackboneKind::Gru, _, _) => "NeuTraj-GRU",
        }
    }

    /// Validates parameter sanity; returns a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.dim == 0 {
            return Err("dim must be positive".into());
        }
        if self.n_samples == 0 {
            return Err("n_samples must be positive".into());
        }
        if self.batch_anchors == 0 {
            return Err("batch_anchors must be positive".into());
        }
        if !(self.lr > 0.0 && self.lr.is_finite()) {
            return Err(format!("lr must be finite-positive, got {}", self.lr));
        }
        if let Some(a) = self.alpha {
            if !(a > 0.0 && a.is_finite()) {
                return Err(format!("alpha must be finite-positive, got {a}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_name_themselves() {
        assert_eq!(TrainConfig::neutraj().method_name(), "NeuTraj");
        assert_eq!(TrainConfig::nt_no_sam().method_name(), "NT-No-SAM");
        assert_eq!(TrainConfig::nt_no_ws().method_name(), "NT-No-WS");
        assert_eq!(TrainConfig::siamese().method_name(), "Siamese");
    }

    #[test]
    fn presets_differ_in_exactly_the_ablated_axis() {
        let full = TrainConfig::neutraj();
        let no_sam = TrainConfig::nt_no_sam();
        assert_eq!(no_sam.backbone, BackboneKind::Lstm);
        assert_eq!(no_sam.weighted_sampling, full.weighted_sampling);
        let no_ws = TrainConfig::nt_no_ws();
        assert_eq!(no_ws.backbone, BackboneKind::SamLstm);
        assert!(!no_ws.weighted_sampling);
        let siamese = TrainConfig::siamese();
        assert!(!siamese.loss.rank_weighted && !siamese.loss.margin_dissimilar);
    }

    #[test]
    fn validation_catches_bad_values() {
        let mut c = TrainConfig::neutraj();
        assert!(c.validate().is_ok());
        c.dim = 0;
        assert!(c.validate().is_err());
        let mut c = TrainConfig::neutraj();
        c.lr = f64::NAN;
        assert!(c.validate().is_err());
        let mut c = TrainConfig::neutraj();
        c.alpha = Some(-2.0);
        assert!(c.validate().is_err());
    }
}
