//! Crash-safe training checkpoints.
//!
//! A [`Checkpoint`] is a **superset of a model file**: the `NTMODEL1`
//! payload (config, grid, parameters, spatial memory) followed by an
//! `NTCKPT01` section carrying the full mutable training state — Adam
//! first/second moments and step count, the epoch cursor, best-loss /
//! early-stopping counters, and the per-epoch loss history. Because the
//! trainer reseeds its RNG deterministically at every epoch start and
//! resets the SAM memory at every epoch boundary, an epoch-boundary
//! checkpoint captures *everything* the rest of the run depends on:
//! resuming from one produces bit-identical final parameters to an
//! uninterrupted run (asserted in `tests/chaos.rs`).
//!
//! Files are written through the same hardened path as models: CRC32
//! envelope + temp-file + fsync + atomic rename. [`NeuTrajModel::load`]
//! accepts a checkpoint file directly (it skips the training-state
//! section), so a serving process can always start from the newest
//! checkpoint even if the final `save` never happened.

use crate::backbone::NeuTrajModel;
use crate::persist::{
    self, atomic_write, decode_f64s, decode_model, encode_f64s, encode_model, open_payload,
    read_enveloped, seal_payload, write_enveloped, PersistError,
};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use neutraj_nn::AdamState;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

/// Magic header + version of the training-state section.
pub(crate) const CKPT_MAGIC: &[u8; 8] = b"NTCKPT01";

/// File extension of checkpoint files written by the trainer.
pub const CKPT_EXTENSION: &str = "ntc";

fn fail(msg: impl Into<String>) -> PersistError {
    persist::fail(msg)
}

/// The mutable training state at an epoch boundary — everything
/// [`Trainer::fit`](crate::Trainer::fit) needs, beyond the parameters
/// themselves, to continue a run bit-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainState {
    /// Next epoch to run (== number of completed epochs).
    pub next_epoch: usize,
    /// Whether early stopping already fired (the run is finished even if
    /// `next_epoch < cfg.epochs`).
    pub early_stopped: bool,
    /// Best per-anchor epoch loss seen so far.
    pub best_loss: f64,
    /// Consecutive non-improving epochs (early-stopping counter).
    pub stale: usize,
    /// The similarity sharpness α in effect for this run.
    pub alpha: f64,
    /// Mean per-anchor loss of every completed epoch.
    pub epoch_losses: Vec<f64>,
    /// Wall-clock seconds of every completed epoch.
    pub epoch_seconds: Vec<f64>,
    /// Optimizer state (timestep + moment buffers).
    pub adam: AdamState,
}

/// A training checkpoint: the model as of an epoch boundary plus the
/// [`TrainState`] needed to continue.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// The model (parameters, config, grid) at the boundary.
    pub model: NeuTrajModel,
    /// The mutable training state at the boundary.
    pub state: TrainState,
}

impl Checkpoint {
    /// Serializes the checkpoint to a raw payload: model payload followed
    /// by the `NTCKPT01` training-state section.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(1 << 16);
        encode_model(&mut buf, &self.model);
        let s = &self.state;
        buf.put_slice(CKPT_MAGIC);
        buf.put_u64_le(s.next_epoch as u64);
        buf.put_u8(s.early_stopped as u8);
        buf.put_f64_le(s.best_loss);
        buf.put_u64_le(s.stale as u64);
        buf.put_f64_le(s.alpha);
        encode_f64s(&mut buf, &s.epoch_losses);
        encode_f64s(&mut buf, &s.epoch_seconds);
        buf.put_u64_le(s.adam.t as u64);
        buf.put_u64_le(s.adam.moments.len() as u64);
        for (m, v) in &s.adam.moments {
            encode_f64s(&mut buf, m);
            encode_f64s(&mut buf, v);
        }
        buf.freeze()
    }

    /// Deserializes a checkpoint payload produced by
    /// [`Checkpoint::to_bytes`]. A plain model payload (no training-state
    /// section) is rejected — use [`NeuTrajModel::from_bytes`] for those.
    pub fn from_bytes(mut data: &[u8]) -> Result<Checkpoint, PersistError> {
        let model = decode_model(&mut data)?;
        if data.remaining() < CKPT_MAGIC.len() || &data[..CKPT_MAGIC.len()] != CKPT_MAGIC {
            return Err(fail(
                "missing training-state section (a plain model file, not a checkpoint?)",
            ));
        }
        data.advance(CKPT_MAGIC.len());
        if data.remaining() < 8 + 1 + 8 + 8 + 8 {
            return Err(fail("truncated checkpoint state header"));
        }
        let next_epoch = data.get_u64_le() as usize;
        let early_stopped = data.get_u8() != 0;
        let best_loss = data.get_f64_le();
        let stale = data.get_u64_le() as usize;
        let alpha = data.get_f64_le();
        let epoch_losses = decode_f64s(&mut data)?;
        let epoch_seconds = decode_f64s(&mut data)?;
        if data.remaining() < 16 {
            return Err(fail("truncated adam state header"));
        }
        let t64 = data.get_u64_le();
        let t = i32::try_from(t64).map_err(|_| fail(format!("implausible adam timestep {t64}")))?;
        let n_slots = data.get_u64_le() as usize;
        if n_slots > 64 {
            return Err(fail(format!("implausible adam slot count {n_slots}")));
        }
        let mut moments = Vec::with_capacity(n_slots);
        for _ in 0..n_slots {
            let m = decode_f64s(&mut data)?;
            let v = decode_f64s(&mut data)?;
            if m.len() != v.len() {
                return Err(fail("adam moment buffer length mismatch"));
            }
            moments.push((m, v));
        }
        if data.has_remaining() {
            return Err(fail(format!(
                "{} trailing bytes after checkpoint state",
                data.remaining()
            )));
        }
        // Cross-field consistency: structural corruption that survives
        // the byte-level checks must still be caught.
        if epoch_losses.len() != epoch_seconds.len() {
            return Err(fail(format!(
                "epoch history length mismatch: {} losses vs {} timings",
                epoch_losses.len(),
                epoch_seconds.len()
            )));
        }
        if next_epoch != epoch_losses.len() {
            return Err(fail(format!(
                "epoch cursor {} disagrees with {} recorded epochs",
                next_epoch,
                epoch_losses.len()
            )));
        }
        if next_epoch > model.config().epochs {
            return Err(fail(format!(
                "epoch cursor {} beyond configured {} epochs",
                next_epoch,
                model.config().epochs
            )));
        }
        Ok(Checkpoint {
            model,
            state: TrainState {
                next_epoch,
                early_stopped,
                best_loss,
                stale,
                alpha,
                epoch_losses,
                epoch_seconds,
                adam: AdamState { t, moments },
            },
        })
    }

    /// Writes the checkpoint through any [`Write`] sink, wrapped in the
    /// checksummed file envelope (the fault-injection seam).
    pub fn write_to<W: Write>(&self, w: &mut W) -> Result<(), PersistError> {
        write_enveloped(w, &self.to_bytes())
    }

    /// Reads an envelope-wrapped checkpoint from any [`Read`] source.
    pub fn read_from<R: Read>(r: &mut R) -> Result<Checkpoint, PersistError> {
        let payload = read_enveloped(r)?;
        Self::from_bytes(&payload)
    }

    /// Atomically writes the checkpoint to `path` (envelope + temp file +
    /// fsync + rename).
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<(), PersistError> {
        atomic_write(path.as_ref(), &seal_payload(&self.to_bytes()))
    }

    /// Loads and verifies a checkpoint file.
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Checkpoint, PersistError> {
        let mut data = Vec::new();
        std::fs::File::open(path)?.read_to_end(&mut data)?;
        Self::from_bytes(open_payload(&data)?)
    }

    /// The canonical checkpoint filename for a boundary after
    /// `epochs_done` completed epochs: `ckpt-000042.ntc`.
    pub fn file_name(epochs_done: usize) -> String {
        format!("ckpt-{epochs_done:06}.{CKPT_EXTENSION}")
    }

    /// Checkpoint files in `dir`, **newest first** (by epoch number in the
    /// filename). Non-checkpoint files are ignored.
    pub fn list_dir(dir: &Path) -> Result<Vec<PathBuf>, PersistError> {
        let mut found: Vec<(usize, PathBuf)> = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let path = entry?.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if let Some(epoch) = name
                .strip_prefix("ckpt-")
                .and_then(|s| s.strip_suffix(&format!(".{CKPT_EXTENSION}")))
                .and_then(|s| s.parse::<usize>().ok())
            {
                found.push((epoch, path));
            }
        }
        found.sort_by_key(|&(epoch, _)| std::cmp::Reverse(epoch));
        Ok(found.into_iter().map(|(_, p)| p).collect())
    }

    /// Loads the newest checkpoint in `dir` that passes verification,
    /// skipping damaged ones. Returns the checkpoint plus the number of
    /// damaged files skipped; `Ok(None)` when the directory holds no
    /// checkpoint files at all. `on_corrupt` is invoked for every damaged
    /// candidate (recovery layers count these through `neutraj-obs`).
    pub fn load_newest_valid(
        dir: &Path,
        mut on_corrupt: impl FnMut(&Path, &PersistError),
    ) -> Result<Option<(Checkpoint, usize)>, PersistError> {
        let candidates = Self::list_dir(dir)?;
        if candidates.is_empty() {
            return Ok(None);
        }
        let mut skipped = 0usize;
        for path in &candidates {
            match Self::load(path) {
                Ok(ckpt) => return Ok(Some((ckpt, skipped))),
                Err(e) => {
                    on_corrupt(path, &e);
                    skipped += 1;
                }
            }
        }
        Err(PersistError::Corrupted(format!(
            "all {skipped} checkpoint files in {} are damaged",
            dir.display()
        )))
    }
}

/// When the trainer writes checkpoints, and where.
///
/// A checkpoint is written at an epoch boundary when **any** trigger
/// fires: the epoch interval, the elapsed-seconds interval, or the stop
/// flag (which also ends the run gracefully — the application typically
/// sets it from a SIGTERM/SIGINT handler). Checkpointing is observational:
/// training results are bit-identical with any policy, including none.
#[derive(Debug, Clone)]
pub struct CheckpointPolicy {
    /// Directory checkpoint files are written into (created on demand).
    pub dir: PathBuf,
    /// Write every `n` completed epochs (0 disables the epoch trigger).
    pub every_epochs: usize,
    /// Also write when this many seconds elapsed since the last write.
    pub every_seconds: Option<f64>,
    /// Graceful-shutdown flag: when set, the trainer writes a final
    /// checkpoint at the next epoch boundary and returns early with
    /// [`TrainReport::interrupted`](crate::TrainReport::interrupted).
    pub stop: Option<Arc<AtomicBool>>,
    /// Retain only the newest `keep` checkpoint files (0 keeps all).
    /// Keeping ≥ 2 lets resume fall back when the newest file is damaged.
    pub keep: usize,
}

impl CheckpointPolicy {
    /// Checkpoint into `dir` after every completed epoch.
    pub fn every_epoch(dir: impl Into<PathBuf>) -> Self {
        Self::every_epochs(dir, 1)
    }

    /// Checkpoint into `dir` after every `n` completed epochs.
    pub fn every_epochs(dir: impl Into<PathBuf>, n: usize) -> Self {
        Self {
            dir: dir.into(),
            every_epochs: n,
            every_seconds: None,
            stop: None,
            keep: 0,
        }
    }

    /// Checkpoint into `dir` whenever `seconds` have elapsed since the
    /// last write (evaluated at epoch boundaries).
    pub fn every_seconds(dir: impl Into<PathBuf>, seconds: f64) -> Self {
        Self {
            dir: dir.into(),
            every_epochs: 0,
            every_seconds: Some(seconds),
            stop: None,
            keep: 0,
        }
    }

    /// Attaches a graceful-shutdown flag (see [`CheckpointPolicy::stop`]).
    pub fn with_stop_flag(mut self, flag: Arc<AtomicBool>) -> Self {
        self.stop = Some(flag);
        self
    }

    /// Retains only the newest `keep` checkpoints (0 keeps all).
    pub fn with_keep(mut self, keep: usize) -> Self {
        self.keep = keep;
        self
    }

    /// Whether the epoch/time triggers say a checkpoint is due after
    /// `epochs_done` completed epochs with `since_last` elapsed since the
    /// previous write.
    pub(crate) fn due(&self, epochs_done: usize, since_last_secs: f64) -> bool {
        let by_epoch = self.every_epochs > 0 && epochs_done.is_multiple_of(self.every_epochs);
        let by_time = self
            .every_seconds
            .is_some_and(|t| since_last_secs >= t && t >= 0.0);
        by_epoch || by_time
    }

    /// Whether the stop flag is raised.
    pub(crate) fn stop_requested(&self) -> bool {
        self.stop
            .as_ref()
            .is_some_and(|f| f.load(std::sync::atomic::Ordering::Relaxed))
    }

    /// Deletes checkpoints beyond the retention limit (best-effort; a
    /// failed delete never fails training).
    pub(crate) fn prune(&self) {
        if self.keep == 0 {
            return;
        }
        if let Ok(files) = Checkpoint::list_dir(&self.dir) {
            for old in files.iter().skip(self.keep) {
                let _ = std::fs::remove_file(old);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TrainConfig;
    use neutraj_trajectory::{BoundingBox, Grid};

    fn ckpt(next_epoch: usize) -> Checkpoint {
        let grid = Grid::new(BoundingBox::new(0.0, 0.0, 100.0, 100.0), 10.0).unwrap();
        let cfg = TrainConfig {
            dim: 4,
            epochs: 5,
            ..TrainConfig::nt_no_sam()
        };
        let model = NeuTrajModel::untrained(cfg, grid);
        Checkpoint {
            model,
            state: TrainState {
                next_epoch,
                early_stopped: false,
                best_loss: 0.25,
                stale: 1,
                alpha: 3.5,
                epoch_losses: vec![0.5; next_epoch],
                epoch_seconds: vec![0.01; next_epoch],
                adam: AdamState {
                    t: 7,
                    moments: vec![(vec![0.1; 6], vec![0.2; 6])],
                },
            },
        }
    }

    #[test]
    fn payload_roundtrip() {
        let c = ckpt(3);
        let bytes = c.to_bytes();
        let back = Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(back.state, c.state);
        assert_eq!(back.model.to_bytes(), c.model.to_bytes());
    }

    #[test]
    fn model_loader_accepts_checkpoint_payload() {
        let c = ckpt(2);
        let model = NeuTrajModel::from_bytes(&c.to_bytes()).unwrap();
        assert_eq!(model.to_bytes(), c.model.to_bytes());
    }

    #[test]
    fn plain_model_payload_is_not_a_checkpoint() {
        let c = ckpt(1);
        let err = Checkpoint::from_bytes(&c.model.to_bytes()).unwrap_err();
        assert!(err.to_string().contains("training-state"), "{err}");
    }

    #[test]
    fn inconsistent_cursor_rejected() {
        let mut c = ckpt(3);
        c.state.next_epoch = 2; // disagrees with 3 recorded losses
        let err = Checkpoint::from_bytes(&c.to_bytes()).unwrap_err();
        assert!(err.to_string().contains("cursor"), "{err}");
        let mut c = ckpt(3);
        c.state.epoch_seconds.pop();
        let err = Checkpoint::from_bytes(&c.to_bytes()).unwrap_err();
        assert!(err.to_string().contains("length mismatch"), "{err}");
    }

    #[test]
    fn file_roundtrip_and_model_superset_load() {
        let dir = std::env::temp_dir().join("neutraj_ckpt_roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let c = ckpt(4);
        let path = dir.join(Checkpoint::file_name(4));
        c.save(&path).unwrap();
        let back = Checkpoint::load(&path).unwrap();
        assert_eq!(back.state, c.state);
        // A checkpoint file is a superset of a model file.
        let model = NeuTrajModel::load(&path).unwrap();
        assert_eq!(model.to_bytes(), c.model.to_bytes());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn newest_valid_skips_damaged_files() {
        let dir = std::env::temp_dir().join("neutraj_ckpt_fallback");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        ckpt(1).save(dir.join(Checkpoint::file_name(1))).unwrap();
        ckpt(2).save(dir.join(Checkpoint::file_name(2))).unwrap();
        // Damage the newest.
        let newest = dir.join(Checkpoint::file_name(3));
        ckpt(3).save(&newest).unwrap();
        let mut bytes = std::fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&newest, &bytes).unwrap();

        let mut corrupt_seen = 0;
        let (loaded, skipped) = Checkpoint::load_newest_valid(&dir, |_, _| corrupt_seen += 1)
            .unwrap()
            .expect("some checkpoint");
        assert_eq!(skipped, 1);
        assert_eq!(corrupt_seen, 1);
        assert_eq!(loaded.state.next_epoch, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn all_damaged_is_an_error_and_empty_is_none() {
        let dir = std::env::temp_dir().join("neutraj_ckpt_all_bad");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        assert!(Checkpoint::load_newest_valid(&dir, |_, _| {})
            .unwrap()
            .is_none());
        std::fs::write(dir.join(Checkpoint::file_name(1)), b"junk").unwrap();
        assert!(Checkpoint::load_newest_valid(&dir, |_, _| {}).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn policy_triggers() {
        let p = CheckpointPolicy::every_epochs("/tmp/x", 2);
        assert!(!p.due(1, 0.0));
        assert!(p.due(2, 0.0));
        assert!(p.due(4, 0.0));
        let p = CheckpointPolicy::every_seconds("/tmp/x", 30.0);
        assert!(!p.due(3, 10.0));
        assert!(p.due(3, 31.0));
        let flag = Arc::new(AtomicBool::new(false));
        let p = CheckpointPolicy::every_epoch("/tmp/x").with_stop_flag(flag.clone());
        assert!(!p.stop_requested());
        flag.store(true, std::sync::atomic::Ordering::Relaxed);
        assert!(p.stop_requested());
    }

    #[test]
    fn retention_prunes_oldest() {
        let dir = std::env::temp_dir().join("neutraj_ckpt_prune");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        for e in 1..=5 {
            ckpt(e).save(dir.join(Checkpoint::file_name(e))).unwrap();
        }
        CheckpointPolicy::every_epoch(&dir).with_keep(2).prune();
        let left = Checkpoint::list_dir(&dir).unwrap();
        assert_eq!(left.len(), 2);
        assert!(left[0].to_string_lossy().contains("ckpt-000005"));
        assert!(left[1].to_string_lossy().contains("ckpt-000004"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
