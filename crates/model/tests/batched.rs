//! Property tests for the batched serving path: the lockstep GEMM
//! forward must be bit-identical to the scalar embed for every backbone,
//! batch size and length mix, and batched norm-trick scans must return
//! exactly the scalar scan's neighbours — tie ordering included.

use neutraj_model::{BackboneKind, EmbeddingStore, NeuTrajModel, TrainConfig};
use neutraj_trajectory::{BoundingBox, Grid, Point, Trajectory};
use proptest::prelude::*;

fn grid() -> Grid {
    Grid::new(BoundingBox::new(0.0, 0.0, 1000.0, 500.0), 50.0).unwrap()
}

fn model(kind: BackboneKind) -> NeuTrajModel {
    let cfg = TrainConfig {
        backbone: kind,
        dim: 8,
        seed: 9,
        ..TrainConfig::neutraj()
    };
    NeuTrajModel::untrained(cfg, grid())
}

/// A deterministic trajectory of `len` points, shaped by `id` so every
/// batch slot differs.
fn traj(id: u64, len: usize) -> Trajectory {
    Trajectory::new_unchecked(
        id,
        (0..len)
            .map(|k| {
                let t = k as f64;
                let i = id as f64;
                Point::new(
                    500.0 + 450.0 * (0.37 * t + 0.13 * i).sin(),
                    250.0 + 220.0 * (0.23 * t - 0.29 * i).cos(),
                )
            })
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Tentpole invariant: `embed_batch` is bit-identical to per-item
    /// `embed` for every backbone at batch sizes 1..=17 with mixed
    /// sequence lengths.
    #[test]
    fn embed_batch_bit_identical_to_scalar_embed(
        lens in prop::collection::vec(2usize..40, 1..=17),
    ) {
        for kind in [BackboneKind::SamLstm, BackboneKind::Lstm, BackboneKind::Gru] {
            let m = model(kind);
            let ts: Vec<Trajectory> = lens
                .iter()
                .enumerate()
                .map(|(i, &len)| traj(i as u64, len))
                .collect();
            let batched = m.embed_batch(&ts);
            prop_assert_eq!(batched.len(), ts.len());
            for (t, got) in ts.iter().zip(&batched) {
                let want = m.embed(t);
                prop_assert_eq!(&want, got, "backbone {:?} diverged", kind);
            }
        }
    }

    /// `knn_batch` returns exactly `knn` per query — same indices, same
    /// distances, same tie ordering. Embeddings are drawn from a small
    /// discrete set so duplicate rows (distance ties) are common, and the
    /// corpus spans more than one scan block.
    #[test]
    fn knn_batch_exactly_matches_scalar_knn(
        vals in prop::collection::vec(0u8..6, 600),
        qvals in prop::collection::vec(0u8..6, 8),
        k in 1usize..20,
    ) {
        let dim = 4;
        let embs: Vec<Vec<f64>> = vals
            .chunks(dim)
            .map(|c| c.iter().map(|&v| v as f64).collect())
            .collect();
        let store = EmbeddingStore::from_embeddings(dim, &embs);
        let queries: Vec<Vec<f64>> = qvals
            .chunks(dim)
            .map(|c| c.iter().map(|&v| v as f64).collect())
            .collect();
        let qrefs: Vec<&[f64]> = queries.iter().map(|q| q.as_slice()).collect();
        let batch = store.knn_batch(&qrefs, k);
        prop_assert_eq!(batch.len(), queries.len());
        for (q, got) in qrefs.iter().zip(&batch) {
            let want = store.knn(q, k);
            prop_assert_eq!(&want, got, "batched scan diverged from scalar");
        }
    }
}

/// Non-property pin: batching across the scalar/batched embed boundary
/// composes — a `SimilarityDb` filled via scalar inserts answers batched
/// queries bit-identically to scalar ones.
#[test]
fn db_knn_batch_matches_scalar_knn() {
    use neutraj_model::{Query, SimilarityDb};
    let m = model(BackboneKind::SamLstm);
    let mut db = SimilarityDb::new(m);
    for i in 0..40 {
        db.insert(traj(i, 3 + (i as usize * 7) % 25)).unwrap();
    }
    let queries: Vec<Trajectory> = (100..109).map(|i| traj(i, 5 + (i as usize) % 20)).collect();
    let q = Query::new(5);
    let batch = db.search_batch(&queries, &q).unwrap();
    for (one, got) in queries.iter().zip(&batch) {
        assert_eq!(&db.search(one, &q).unwrap(), got);
    }
}
