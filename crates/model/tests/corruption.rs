//! Property tests of the persistence layer under random damage: any
//! bit flip or truncation of an enveloped model/checkpoint file must
//! surface as a typed `PersistError` — never a panic, never a silently
//! loaded file whose parameters differ from what was saved.

use neutraj_model::{
    Checkpoint, EmbeddingStore, FaultyReader, FaultyWriter, HnswIndex, HnswParams, NeuTrajModel,
    QuantizedStore, SimilarityDb, TrainConfig, TrainState,
};
use neutraj_nn::AdamState;
use neutraj_trajectory::{BoundingBox, Grid};
use proptest::prelude::*;
use std::sync::OnceLock;

/// A small but real model file image (sealed envelope) shared across
/// cases — building it once keeps the property loops fast.
fn model_image() -> &'static (NeuTrajModel, Vec<u8>) {
    static IMG: OnceLock<(NeuTrajModel, Vec<u8>)> = OnceLock::new();
    IMG.get_or_init(|| {
        let grid = Grid::new(BoundingBox::new(0.0, 0.0, 500.0, 500.0), 50.0).unwrap();
        let cfg = TrainConfig {
            dim: 4,
            ..TrainConfig::neutraj()
        };
        let model = NeuTrajModel::untrained(cfg, grid);
        let mut sink = Vec::new();
        model.write_to(&mut sink).unwrap();
        (model, sink)
    })
}

/// A sealed checkpoint file image (model + training-state section).
fn ckpt_image() -> &'static (Checkpoint, Vec<u8>) {
    static IMG: OnceLock<(Checkpoint, Vec<u8>)> = OnceLock::new();
    IMG.get_or_init(|| {
        let grid = Grid::new(BoundingBox::new(0.0, 0.0, 500.0, 500.0), 50.0).unwrap();
        let cfg = TrainConfig {
            dim: 4,
            epochs: 8,
            ..TrainConfig::nt_no_sam()
        };
        let model = NeuTrajModel::untrained(cfg, grid);
        let ckpt = Checkpoint {
            model,
            state: TrainState {
                next_epoch: 3,
                early_stopped: false,
                best_loss: 0.5,
                stale: 0,
                alpha: 2.0,
                epoch_losses: vec![0.9, 0.7, 0.5],
                epoch_seconds: vec![0.1, 0.1, 0.1],
                adam: AdamState {
                    t: 12,
                    moments: vec![(vec![0.01; 8], vec![0.02; 8])],
                },
            },
        };
        let mut sink = Vec::new();
        ckpt.write_to(&mut sink).unwrap();
        (ckpt, sink)
    })
}

/// A sealed `NTQ08` quantized-store file image.
fn quant_image() -> &'static (QuantizedStore, Vec<u8>) {
    static IMG: OnceLock<(QuantizedStore, Vec<u8>)> = OnceLock::new();
    IMG.get_or_init(|| {
        let mut seed = 3u64;
        let mut unit = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 11) as f64 / (1u64 << 53) as f64
        };
        let embs: Vec<Vec<f64>> = (0..25)
            .map(|_| (0..6).map(|_| unit() * 8.0 - 4.0).collect())
            .collect();
        let qs = QuantizedStore::from_store(&EmbeddingStore::from_embeddings(6, &embs));
        let mut sink = Vec::new();
        qs.write_to(&mut sink).unwrap();
        (qs, sink)
    })
}

/// A populated database plus the sealed `NTHNSW01` graph-index file
/// image produced by `save_graph_index` (envelope + payload).
fn graph_db_image() -> &'static (SimilarityDb, Vec<u8>) {
    static IMG: OnceLock<(SimilarityDb, Vec<u8>)> = OnceLock::new();
    IMG.get_or_init(|| {
        let grid = Grid::new(BoundingBox::new(0.0, 0.0, 1000.0, 500.0), 50.0).unwrap();
        let cfg = TrainConfig {
            dim: 6,
            seed: 31,
            ..TrainConfig::neutraj()
        };
        let model = NeuTrajModel::untrained(cfg, grid);
        let corpus: Vec<neutraj_trajectory::Trajectory> = (0..40)
            .map(|i| {
                neutraj_trajectory::Trajectory::new_unchecked(
                    i as u64,
                    (0..4 + i % 9)
                        .map(|k| {
                            let (t, j) = (k as f64, i as f64);
                            neutraj_trajectory::Point::new(
                                500.0 + 450.0 * (0.31 * t + 0.11 * j).sin(),
                                250.0 + 220.0 * (0.17 * t - 0.23 * j).cos(),
                            )
                        })
                        .collect(),
                )
            })
            .collect();
        let mut db = SimilarityDb::with_corpus(model, corpus, 2);
        db.build_graph_index(&HnswParams::default(), 2).unwrap();
        let dir = std::env::temp_dir().join(format!("neutraj-hnsw-img-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("graph.nthnsw");
        db.save_graph_index(&path).unwrap();
        let image = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).ok();
        (db, image)
    })
}

/// Writes `bytes` to a unique temp file and returns the path (each
/// proptest case gets its own file so cases never race each other).
fn scratch_file(tag: &str, bytes: &[u8]) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!("neutraj-hnsw-corrupt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!(
        "{tag}-{}.nthnsw",
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::write(&path, bytes).unwrap();
    path
}

#[test]
fn undamaged_graph_index_file_roundtrips() {
    let (db, image) = graph_db_image();
    let path = scratch_file("intact", image);
    let mut fresh = db.clone();
    fresh.clear_graph_index();
    fresh.load_graph_index(&path).expect("intact file loads");
    std::fs::remove_file(&path).ok();
    assert_eq!(
        fresh.graph_index().unwrap().to_bytes(),
        db.graph_index().unwrap().to_bytes(),
        "loaded graph must be byte-identical to the saved one"
    );
}

proptest! {
    #[test]
    fn any_bit_flip_in_a_graph_index_file_is_rejected(
        offset in 0usize..1 << 20,
        bit in 0u8..8,
    ) {
        let (db, image) = graph_db_image();
        let mut bytes = image.clone();
        let offset = offset % bytes.len();
        bytes[offset] ^= 1 << bit;
        let path = scratch_file("flip", &bytes);
        let mut fresh = db.clone();
        let res = fresh.load_graph_index(&path);
        std::fs::remove_file(&path).ok();
        prop_assert!(
            res.is_err(),
            "bit {bit} of byte {offset} flipped, NTHNSW01 file still loaded"
        );
    }

    #[test]
    fn any_truncation_of_a_graph_index_file_is_rejected(len in 0usize..1 << 20) {
        let (db, image) = graph_db_image();
        let len = len % image.len();
        let path = scratch_file("trunc", &image[..len]);
        let mut fresh = db.clone();
        let res = fresh.load_graph_index(&path);
        std::fs::remove_file(&path).ok();
        prop_assert!(res.is_err(), "file truncated to {len} bytes still loaded");
    }

    #[test]
    fn trailing_garbage_after_a_graph_index_file_is_rejected(
        extra in prop::collection::vec(0u8..=255, 1..64),
    ) {
        let (db, image) = graph_db_image();
        let mut bytes = image.clone();
        bytes.extend_from_slice(&extra);
        let path = scratch_file("trail", &bytes);
        let mut fresh = db.clone();
        let res = fresh.load_graph_index(&path);
        std::fs::remove_file(&path).ok();
        prop_assert!(res.is_err(), "{} trailing bytes still loaded", extra.len());
    }

    #[test]
    fn raw_graph_payload_damage_never_panics(
        offset in 0usize..1 << 20,
        bit in 0u8..8,
        cut in 0usize..1 << 20,
    ) {
        // Below the envelope (no checksum): structural validation must
        // reject or accept without ever panicking, even when the damage
        // is re-sealed inside a fresh valid envelope.
        let (db, image) = graph_db_image();
        let payload = neutraj_model::persist::open_payload(image).unwrap();
        let mut payload = payload.to_vec();
        let off = offset % payload.len();
        payload[off] ^= 1 << (bit % 8);
        payload.truncate(1 + cut % payload.len());
        let _ = HnswIndex::from_bytes(&payload);
        let resealed = neutraj_model::persist::seal_payload(&payload);
        let path = scratch_file("reseal", &resealed);
        let mut fresh = db.clone();
        let _ = fresh.load_graph_index(&path); // must not panic
        std::fs::remove_file(&path).ok();
    }
}

proptest! {
    #[test]
    fn any_bit_flip_in_a_quantized_store_file_is_rejected(
        offset in 0usize..1 << 20,
        bit in 0u8..8,
    ) {
        let (_, image) = quant_image();
        let offset = offset % image.len();
        let mut r = FaultyReader::new(image.clone()).flip_bit(offset, bit);
        prop_assert!(
            QuantizedStore::read_from(&mut r).is_err(),
            "bit {bit} of byte {offset} flipped, NTQ08 file still loaded"
        );
    }

    #[test]
    fn any_truncation_of_a_quantized_store_file_is_rejected(len in 0usize..1 << 20) {
        let (_, image) = quant_image();
        let len = len % image.len();
        let mut r = FaultyReader::new(image.clone()).truncate_at(len);
        prop_assert!(QuantizedStore::read_from(&mut r).is_err());
    }

    #[test]
    fn any_bit_flip_in_a_model_file_is_rejected(
        offset in 0usize..1 << 20,
        bit in 0u8..8,
    ) {
        let (_, image) = model_image();
        let offset = offset % image.len();
        let mut r = FaultyReader::new(image.clone()).flip_bit(offset, bit);
        let res = NeuTrajModel::read_from(&mut r);
        prop_assert!(
            res.is_err(),
            "bit {bit} of byte {offset} flipped, file still loaded"
        );
    }

    #[test]
    fn any_truncation_of_a_model_file_is_rejected(len in 0usize..1 << 20) {
        let (_, image) = model_image();
        let len = len % image.len(); // strictly shorter than the file
        let mut r = FaultyReader::new(image.clone()).truncate_at(len);
        prop_assert!(NeuTrajModel::read_from(&mut r).is_err());
    }

    #[test]
    fn any_bit_flip_in_a_checkpoint_file_is_rejected(
        offset in 0usize..1 << 20,
        bit in 0u8..8,
    ) {
        let (_, image) = ckpt_image();
        let offset = offset % image.len();
        let mut r = FaultyReader::new(image.clone()).flip_bit(offset, bit);
        prop_assert!(Checkpoint::read_from(&mut r).is_err());
        // A damaged checkpoint is equally unusable as a model file.
        let mut r = FaultyReader::new(image.clone()).flip_bit(offset, bit);
        prop_assert!(NeuTrajModel::read_from(&mut r).is_err());
    }

    #[test]
    fn any_truncation_of_a_checkpoint_file_is_rejected(len in 0usize..1 << 20) {
        let (_, image) = ckpt_image();
        let len = len % image.len();
        let mut r = FaultyReader::new(image.clone()).truncate_at(len);
        prop_assert!(Checkpoint::read_from(&mut r).is_err());
    }

    #[test]
    fn combined_damage_never_panics_and_never_alters_parameters(
        offset in 0usize..1 << 20,
        bit in 0u8..8,
        cut in 0usize..1 << 20,
    ) {
        // Flip + truncate in one pass; the only acceptable `Ok` is the
        // undamaged identity case, and then the bytes must match exactly.
        let (model, image) = model_image();
        let cut = 1 + cut % image.len();
        let r = FaultyReader::new(image.clone())
            .flip_bit(offset % image.len(), bit)
            .truncate_at(cut);
        let intact = r.image() == &image[..];
        let mut r = r;
        match NeuTrajModel::read_from(&mut r) {
            Ok(loaded) => {
                prop_assert!(intact, "damaged file loaded");
                prop_assert_eq!(loaded.to_bytes(), model.to_bytes());
            }
            Err(_) => {}
        }
    }

    #[test]
    fn raw_payload_damage_never_panics(
        offset in 0usize..1 << 20,
        bit in 0u8..8,
        cut in 0usize..1 << 20,
    ) {
        // Below the envelope (no checksum), decoding damaged bytes must
        // still never panic — structural checks catch what they can, and
        // the envelope is the actual integrity layer above this.
        let (model, _) = model_image();
        let mut payload = model.to_bytes().to_vec();
        let off = offset % payload.len();
        payload[off] ^= 1 << (bit % 8);
        payload.truncate(1 + cut % payload.len());
        let _ = NeuTrajModel::from_bytes(&payload);
    }

    #[test]
    fn a_crash_at_any_write_offset_leaves_an_unloadable_torn_file(
        budget in 0usize..1 << 20,
    ) {
        let (model, image) = model_image();
        let budget = budget % image.len(); // crash strictly before the end
        let mut w = FaultyWriter::fails_after(budget);
        prop_assert!(model.write_to(&mut w).is_err(), "short write not surfaced");
        // The torn prefix must never pass verification.
        let mut r = FaultyReader::new(w.written.clone());
        prop_assert!(NeuTrajModel::read_from(&mut r).is_err());
    }
}

#[test]
fn undamaged_quantized_store_roundtrips_through_the_faulty_reader() {
    let (qs, image) = quant_image();
    let mut r = FaultyReader::new(image.clone());
    let loaded = QuantizedStore::read_from(&mut r).expect("intact file loads");
    assert_eq!(&loaded, qs);
    // And through an uninterrupted FaultyWriter.
    let mut w = FaultyWriter::fails_after(usize::MAX);
    qs.write_to(&mut w).unwrap();
    assert_eq!(&w.written, image);
}

#[test]
fn an_uninterrupted_writer_roundtrips() {
    let (model, image) = model_image();
    let mut w = FaultyWriter::fails_after(usize::MAX);
    model.write_to(&mut w).unwrap();
    assert_eq!(&w.written, image);
    let mut r = FaultyReader::new(w.written.clone());
    let back = NeuTrajModel::read_from(&mut r).unwrap();
    assert_eq!(back.to_bytes(), model.to_bytes());
}
