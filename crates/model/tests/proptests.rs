//! Property-based tests of the model crate: similarity normalization,
//! sampling invariants, loss gradients and persistence on random inputs.

use neutraj_measures::DistanceMatrix;
use neutraj_model::{
    pair_similarity, ranked_random_samples, ranked_weighted_samples, EmbeddingStore, Normalization,
    QuantizedStore, RankedBatchLoss, SimilarityMatrix,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A random symmetric distance matrix with zero diagonal.
fn arb_dist(n: usize) -> impl Strategy<Value = DistanceMatrix> {
    prop::collection::vec(0.01f64..50.0, n * (n - 1) / 2).prop_map(move |upper| {
        let mut data = vec![0.0; n * n];
        let mut it = upper.into_iter();
        for i in 0..n {
            for j in i + 1..n {
                let d = it.next().expect("enough entries");
                data[i * n + j] = d;
                data[j * n + i] = d;
            }
        }
        DistanceMatrix::from_raw(n, data)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn exp_decay_similarities_are_valid_and_symmetric(
        dist in arb_dist(8),
        alpha in 0.01f64..5.0,
    ) {
        let s = SimilarityMatrix::exp_decay(&dist, alpha);
        for i in 0..8 {
            prop_assert!((s.get(i, i) - 1.0).abs() < 1e-12, "self-sim must be 1");
            for j in 0..8 {
                prop_assert!((0.0..=1.0).contains(&s.get(i, j)));
                prop_assert!((s.get(i, j) - s.get(j, i)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn row_softmax_rows_are_distributions(dist in arb_dist(7), alpha in 0.01f64..5.0) {
        let s = SimilarityMatrix::with_normalization(&dist, alpha, Normalization::RowSoftmax);
        for i in 0..7 {
            prop_assert!((s.row(i).iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn similarity_preserves_distance_order(dist in arb_dist(6), alpha in 0.05f64..3.0) {
        let s = SimilarityMatrix::exp_decay(&dist, alpha);
        for a in 0..6 {
            for i in 0..6 {
                for j in 0..6 {
                    if dist.get(a, i) < dist.get(a, j) {
                        prop_assert!(
                            s.get(a, i) >= s.get(a, j),
                            "closer seed got lower similarity"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn sampling_invariants_hold(
        dist in arb_dist(12),
        anchor in 0usize..12,
        n in 1usize..8,
        rng_seed in 0u64..1000,
    ) {
        let sim = SimilarityMatrix::auto(&dist);
        for weighted in [true, false] {
            let mut rng = StdRng::seed_from_u64(rng_seed);
            let s = if weighted {
                ranked_weighted_samples(&sim, anchor, n, &mut rng)
            } else {
                ranked_random_samples(&sim, anchor, n, &mut rng)
            };
            let all: Vec<usize> = s.similar.iter().chain(&s.dissimilar).copied().collect();
            prop_assert!(!all.contains(&anchor), "anchor sampled as its own pair");
            prop_assert!(all.iter().all(|&i| i < 12));
            // Ranked orders.
            let row = sim.row(anchor);
            for w in s.similar.windows(2) {
                prop_assert!(row[w[0]] >= row[w[1]]);
            }
            for w in s.dissimilar.windows(2) {
                prop_assert!(row[w[0]] <= row[w[1]]);
            }
            // Weighted sampling: each list individually duplicate-free.
            let mut ss = s.similar.clone();
            ss.sort_unstable();
            ss.dedup();
            prop_assert_eq!(ss.len(), s.similar.len());
        }
    }

    #[test]
    fn rank_weights_always_normalized(n in 1usize..50) {
        for cfg in [RankedBatchLoss::neutraj(), RankedBatchLoss::siamese()] {
            let w = cfg.rank_weights(n);
            prop_assert_eq!(w.len(), n);
            prop_assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            prop_assert!(w.iter().all(|&x| x > 0.0));
        }
    }

    #[test]
    fn pair_loss_gradients_match_finite_differences(
        anchor in prop::collection::vec(-2.0f64..2.0, 4),
        sample in prop::collection::vec(-2.0f64..2.0, 4),
        target in 0.0f64..1.0,
    ) {
        // Skip the non-differentiable coincidence point.
        prop_assume!(neutraj_nn::linalg::euclidean(&anchor, &sample) > 1e-3);
        let cfg = RankedBatchLoss::neutraj();
        let out = &cfg.similar_list(&anchor, &[&sample], &[target])[0];
        let eps = 1e-6;
        for k in 0..4 {
            let mut ap = anchor.clone();
            let mut am = anchor.clone();
            ap[k] += eps;
            am[k] -= eps;
            let fp = cfg.similar_list(&ap, &[&sample], &[target])[0].loss;
            let fm = cfg.similar_list(&am, &[&sample], &[target])[0].loss;
            let num = (fp - fm) / (2.0 * eps);
            prop_assert!(
                (num - out.d_anchor[k]).abs() < 1e-5,
                "k={k}: {num} vs {}",
                out.d_anchor[k]
            );
        }
    }

    #[test]
    fn pair_similarity_is_a_valid_kernel(
        a in prop::collection::vec(-5.0f64..5.0, 6),
        b in prop::collection::vec(-5.0f64..5.0, 6),
    ) {
        let g = pair_similarity(&a, &b);
        prop_assert!(g > 0.0 && g <= 1.0);
        prop_assert!((pair_similarity(&a, &b) - pair_similarity(&b, &a)).abs() < 1e-15);
        prop_assert!((pair_similarity(&a, &a) - 1.0).abs() < 1e-15);
    }

    /// The int8 codec's core numeric contract (`DESIGN.md` §12): with
    /// per-row `scale = range/255` and `offset = min`, dequantization
    /// recovers every component to within half a quantization step
    /// (plus fp slop), and the NTQ08 byte roundtrip is lossless.
    #[test]
    fn quantize_dequantize_error_is_bounded_by_half_scale(
        rows in prop::collection::vec(
            prop::collection::vec(-1e4f64..1e4, 5),
            1..12,
        ),
    ) {
        let store = EmbeddingStore::from_embeddings(5, &rows);
        let qs = QuantizedStore::from_store(&store);
        for (i, row) in rows.iter().enumerate() {
            let lo = row.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let scale = (hi - lo) / 255.0;
            // Half a step, with slack for the rounding done in
            // `(v - lo) * (255/range)` floating-point arithmetic.
            let bound = 0.5 * scale * (1.0 + 1e-9) + 1e-12 * hi.abs().max(lo.abs());
            let dq = qs.dequantize(i);
            for (d, (&v, &w)) in row.iter().zip(&dq).enumerate() {
                prop_assert!(
                    (v - w).abs() <= bound,
                    "row {i} dim {d}: |{v} - {w}| > {bound} (scale {scale})"
                );
            }
        }
        let back = QuantizedStore::from_bytes(&qs.to_bytes()).expect("own bytes parse");
        prop_assert_eq!(back, qs);
    }
}
