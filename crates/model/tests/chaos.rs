//! Chaos suite: kill training at every checkpoint boundary, resume, and
//! demand **bit-identical** final parameters; damage checkpoints and
//! demand graceful fallback. This is the executable form of the
//! crash-safety contract in `DESIGN.md` §9.

use neutraj_measures::{DistanceMatrix, Hausdorff};
use neutraj_model::{Checkpoint, CheckpointPolicy, TrainConfig, Trainer};
use neutraj_obs::{names, Registry};
use neutraj_trajectory::gen::PortoLikeGenerator;
use neutraj_trajectory::{Grid, Trajectory};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const EPOCHS: usize = 4;

fn world() -> (Grid, Vec<Trajectory>, DistanceMatrix) {
    let ds = PortoLikeGenerator {
        num_trajectories: 24,
        num_templates: 6,
        max_len: 25,
        ..Default::default()
    }
    .generate(42);
    let seeds = ds.trajectories().to_vec();
    let grid = Grid::covering(&seeds, 100.0).unwrap();
    let rescaled: Vec<Trajectory> = seeds.iter().map(|t| grid.rescale_trajectory(t)).collect();
    let dist = DistanceMatrix::compute(&Hausdorff, &rescaled);
    (grid, seeds, dist)
}

fn cfg(preset: TrainConfig) -> TrainConfig {
    TrainConfig {
        dim: 8,
        n_samples: 4,
        batch_anchors: 8,
        epochs: EPOCHS,
        ..preset
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("neutraj_chaos_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Runs training to completion with a stop flag raised from the `k`-th
/// epoch callback — the trainer writes a final checkpoint at that
/// boundary and returns `interrupted`.
fn interrupted_run(
    preset: TrainConfig,
    grid: &Grid,
    seeds: &[Trajectory],
    dist: &DistanceMatrix,
    dir: &Path,
    kill_after_epoch: usize,
) {
    let flag = Arc::new(AtomicBool::new(false));
    let policy = CheckpointPolicy::every_epoch(dir).with_stop_flag(flag.clone());
    let (_m, report) = Trainer::new(cfg(preset), grid.clone())
        .with_checkpoints(policy)
        .fit(seeds, dist, |s| {
            if s.epoch + 1 == kill_after_epoch {
                flag.store(true, Ordering::Relaxed);
            }
        });
    assert!(report.interrupted, "stop flag should interrupt the run");
    assert_eq!(report.epoch_losses.len(), kill_after_epoch);
}

#[test]
fn kill_at_every_boundary_then_resume_is_bit_identical() {
    let (grid, seeds, dist) = world();
    for preset in [TrainConfig::neutraj(), TrainConfig::nt_no_sam()] {
        let name = cfg(preset.clone()).method_name();
        let (full, full_report) =
            Trainer::new(cfg(preset.clone()), grid.clone()).fit(&seeds, &dist, |_| {});
        assert_eq!(full_report.epoch_losses.len(), EPOCHS);

        for k in 1..EPOCHS {
            let dir = tmp_dir(&format!("kill_{name}_{k}"));
            interrupted_run(preset.clone(), &grid, &seeds, &dist, &dir, k);

            let (resumed, report) = Trainer::new(cfg(preset.clone()), grid.clone())
                .resume(&dir, &seeds, &dist, |_| {})
                .expect("resume");
            assert_eq!(
                report.epoch_losses, full_report.epoch_losses,
                "{name}: losses diverged after kill at epoch {k}"
            );
            assert!(!report.interrupted);
            assert_eq!(
                full.to_bytes(),
                resumed.to_bytes(),
                "{name}: kill at epoch {k} + resume is not bit-identical"
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

#[test]
fn resume_falls_back_to_newest_valid_checkpoint() {
    let (grid, seeds, dist) = world();
    let preset = TrainConfig::nt_no_sam();
    let (full, _) = Trainer::new(cfg(preset.clone()), grid.clone()).fit(&seeds, &dist, |_| {});

    // Interrupt after 3 epochs with every-epoch checkpoints → files for
    // boundaries 1, 2 and 3 exist. Corrupt #3 and truncate #2: resume must
    // fall back to #1 and still converge to the uninterrupted result.
    let dir = tmp_dir("fallback");
    interrupted_run(preset.clone(), &grid, &seeds, &dist, &dir, 3);
    let newest = dir.join(Checkpoint::file_name(3));
    let mut bytes = std::fs::read(&newest).unwrap();
    let mid = bytes.len() / 3;
    bytes[mid] ^= 0x40;
    std::fs::write(&newest, &bytes).unwrap();
    let second = dir.join(Checkpoint::file_name(2));
    let bytes = std::fs::read(&second).unwrap();
    std::fs::write(&second, &bytes[..bytes.len() / 2]).unwrap();

    let registry = Registry::new();
    let (resumed, _) = Trainer::new(cfg(preset), grid.clone())
        .with_metrics(&registry)
        .resume(&dir, &seeds, &dist, |_| {})
        .expect("resume past damaged checkpoints");
    assert_eq!(full.to_bytes(), resumed.to_bytes());
    assert_eq!(registry.counter(names::CKPT_CORRUPTION_TOTAL).get(), 2);
    assert_eq!(registry.counter(names::CKPT_FALLBACK_TOTAL).get(), 1);
    assert_eq!(registry.counter(names::CKPT_RESTORES_TOTAL).get(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_with_all_checkpoints_damaged_errors_cleanly() {
    let (grid, seeds, dist) = world();
    let preset = TrainConfig::nt_no_sam();
    let dir = tmp_dir("all_damaged");
    interrupted_run(preset.clone(), &grid, &seeds, &dist, &dir, 2);
    for f in Checkpoint::list_dir(&dir).unwrap() {
        let bytes = std::fs::read(&f).unwrap();
        std::fs::write(&f, &bytes[..bytes.len() - 7]).unwrap();
    }
    let err = Trainer::new(cfg(preset), grid.clone())
        .resume(&dir, &seeds, &dist, |_| {})
        .unwrap_err();
    assert!(err.to_string().contains("damaged"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_rejects_config_mismatch_and_empty_dir() {
    let (grid, seeds, dist) = world();
    let dir = tmp_dir("mismatch");
    interrupted_run(TrainConfig::nt_no_sam(), &grid, &seeds, &dist, &dir, 1);

    // Different dim → reject before any training happens.
    let other = TrainConfig {
        dim: 16,
        ..cfg(TrainConfig::nt_no_sam())
    };
    let err = Trainer::new(other, grid.clone())
        .resume(&dir, &seeds, &dist, |_| {})
        .unwrap_err();
    assert!(err.to_string().contains("configuration"), "{err}");

    let empty = tmp_dir("empty");
    let err = Trainer::new(cfg(TrainConfig::nt_no_sam()), grid.clone())
        .resume(&empty, &seeds, &dist, |_| {})
        .unwrap_err();
    assert!(err.to_string().contains("no checkpoint"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&empty);
}

#[test]
fn checkpointing_is_observational_and_retention_holds() {
    let (grid, seeds, dist) = world();
    let preset = TrainConfig::nt_no_sam();
    let (plain, _) = Trainer::new(cfg(preset.clone()), grid.clone()).fit(&seeds, &dist, |_| {});

    let dir = tmp_dir("observational");
    let registry = Registry::new();
    let (ckpted, _) = Trainer::new(cfg(preset.clone()), grid.clone())
        .with_metrics(&registry)
        .with_checkpoints(CheckpointPolicy::every_epoch(&dir).with_keep(2))
        .fit(&seeds, &dist, |_| {});
    // Writing checkpoints never perturbs training.
    assert_eq!(plain.to_bytes(), ckpted.to_bytes());
    // Retention kept only the newest two files.
    assert_eq!(Checkpoint::list_dir(&dir).unwrap().len(), 2);
    assert_eq!(
        registry.counter(names::CKPT_WRITES_TOTAL).get(),
        EPOCHS as u64
    );
    assert_eq!(
        registry.histogram(names::CKPT_WRITE_SECONDS).count(),
        EPOCHS as u64
    );

    // Resuming from the final boundary re-runs nothing and still yields
    // the exact final model (only the memory refresh remains).
    let (resumed, report) = Trainer::new(cfg(preset), grid.clone())
        .resume(&dir, &seeds, &dist, |_| {})
        .expect("resume from completed run");
    assert_eq!(report.epoch_losses.len(), EPOCHS);
    assert_eq!(plain.to_bytes(), resumed.to_bytes());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn early_stopped_checkpoint_resumes_without_extra_epochs() {
    let (grid, seeds, dist) = world();
    let preset = TrainConfig {
        epochs: 30,
        lr: 1e-9, // frozen ⇒ loss cannot improve ⇒ patience fires
        patience: Some(2),
        ..cfg(TrainConfig::nt_no_sam())
    };
    let dir = tmp_dir("early_stop");
    let (full, full_report) = Trainer::new(preset.clone(), grid.clone())
        .with_checkpoints(CheckpointPolicy::every_epoch(&dir))
        .fit(&seeds, &dist, |_| {});
    assert!(full_report.early_stopped);

    let (resumed, report) = Trainer::new(preset, grid.clone())
        .resume(&dir, &seeds, &dist, |_| {})
        .expect("resume");
    assert!(report.early_stopped);
    assert_eq!(report.epoch_losses, full_report.epoch_losses);
    assert_eq!(full.to_bytes(), resumed.to_bytes());
    let _ = std::fs::remove_dir_all(&dir);
}
