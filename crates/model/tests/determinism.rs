//! Bit-exact thread-count invariance of the batch training paths.
//!
//! The contract (DESIGN.md, "Threading & determinism"): for every backbone,
//! `forward_train_batch` and `backward_batch` are functions of the batch
//! alone — embeddings, BPTT gradients and (for SAM) the post-batch spatial
//! memory are **bit-identical** at every thread count. These properties
//! drive random batches through threads ∈ {1, 2, 4, 8} and compare with
//! `==`, not a tolerance.

use neutraj_model::{Backbone, BackboneCache, BackboneGrads, BackboneKind, SeqInputs, TrainConfig};
use neutraj_nn::SpatialMemory;
use neutraj_trajectory::{BoundingBox, Grid};
use proptest::prelude::*;

/// Grid of 20 × 10 cells (1000 × 500 span, 50-unit cells).
fn grid() -> Grid {
    Grid::new(BoundingBox::new(0.0, 0.0, 1000.0, 500.0), 50.0).unwrap()
}

const COLS: u32 = 20;
const ROWS: u32 = 10;

fn build(kind: BackboneKind) -> Backbone {
    let cfg = TrainConfig {
        backbone: kind,
        dim: 8,
        ..TrainConfig::neutraj()
    };
    Backbone::build(&cfg, &grid())
}

/// Random batch of variable-length sequences with in-grid cells.
fn arb_batch() -> impl Strategy<Value = Vec<SeqInputs>> {
    prop::collection::vec(
        (2usize..12).prop_flat_map(|len| {
            (
                prop::collection::vec((-1.0f64..1.0, -1.0f64..1.0), len),
                prop::collection::vec((0u32..COLS, 0u32..ROWS), len),
            )
        }),
        5..12,
    )
}

/// Flattens a gradient buffer into comparable tensors.
fn grad_tensors(g: &BackboneGrads) -> Vec<Vec<f64>> {
    match g {
        BackboneGrads::Sam(g) => vec![
            g.p.as_slice().to_vec(),
            g.w_his.as_slice().to_vec(),
            g.b_his.clone(),
        ],
        BackboneGrads::Lstm(g) => vec![g.p.as_slice().to_vec()],
        BackboneGrads::Gru(g) => vec![g.pzr.as_slice().to_vec(), g.ph.as_slice().to_vec()],
    }
}

fn memory_of(b: &Backbone) -> Option<SpatialMemory> {
    match b {
        Backbone::Sam(e) => Some(e.memory.clone()),
        _ => None,
    }
}

/// Deterministic, non-trivial pseudo loss gradients derived from the
/// embeddings themselves (so every coordinate gets training signal).
fn pseudo_d_embs(out: &[(Vec<f64>, BackboneCache)]) -> Vec<Vec<f64>> {
    out.iter()
        .enumerate()
        .map(|(i, (h, _))| {
            h.iter()
                .enumerate()
                .map(|(k, v)| (0.37 + 0.11 * i as f64 - 0.05 * k as f64) * (1.0 + v))
                .collect()
        })
        .collect()
}

fn assert_thread_invariance(kind: BackboneKind, batch: &[SeqInputs]) -> Result<(), TestCaseError> {
    let inputs: Vec<&SeqInputs> = batch.iter().collect();

    // Reference run on one thread.
    let mut b_ref = build(kind);
    let ref_out = b_ref.forward_train_batch(&inputs, 1);
    let ref_mem = memory_of(&b_ref);
    let d_embs = pseudo_d_embs(&ref_out);
    let mut g_ref = b_ref.zero_grads();
    let jobs: Vec<(&BackboneCache, &[f64])> = ref_out
        .iter()
        .zip(&d_embs)
        .map(|((_, c), d)| (c, d.as_slice()))
        .collect();
    b_ref.backward_batch(&jobs, &mut g_ref, 1);
    let ref_grads = grad_tensors(&g_ref);

    for threads in [2usize, 4, 8] {
        let mut b = build(kind);
        let out = b.forward_train_batch(&inputs, threads);
        prop_assert_eq!(out.len(), ref_out.len());
        for (i, ((h_t, _), (h_1, _))) in out.iter().zip(&ref_out).enumerate() {
            prop_assert_eq!(
                h_t,
                h_1,
                "{:?}: embedding {} diverged at {} threads",
                kind,
                i,
                threads
            );
        }
        prop_assert_eq!(
            memory_of(&b),
            ref_mem.clone(),
            "{:?}: spatial memory diverged at {} threads",
            kind,
            threads
        );
        let mut g = b.zero_grads();
        let jobs: Vec<(&BackboneCache, &[f64])> = out
            .iter()
            .zip(&d_embs)
            .map(|((_, c), d)| (c, d.as_slice()))
            .collect();
        b.backward_batch(&jobs, &mut g, threads);
        prop_assert_eq!(
            grad_tensors(&g),
            ref_grads.clone(),
            "{:?}: gradients diverged at {} threads",
            kind,
            threads
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn lstm_batch_is_thread_count_invariant(batch in arb_batch()) {
        assert_thread_invariance(BackboneKind::Lstm, &batch)?;
    }

    #[test]
    fn gru_batch_is_thread_count_invariant(batch in arb_batch()) {
        assert_thread_invariance(BackboneKind::Gru, &batch)?;
    }

    #[test]
    fn sam_batch_is_thread_count_invariant(batch in arb_batch()) {
        assert_thread_invariance(BackboneKind::SamLstm, &batch)?;
    }
}

/// The tiny-batch sequential fallback (`len < 4`) must agree with the
/// threaded path's protocol too — a 3-sequence batch exercises it.
#[test]
fn tiny_batches_and_empty_jobs_are_consistent() {
    let batch: Vec<SeqInputs> = (0..3)
        .map(|i| {
            let coords: Vec<(f64, f64)> = (0..5)
                .map(|t| (0.1 * t as f64 - 0.2 * i as f64, 0.05 * t as f64))
                .collect();
            let cells: Vec<(u32, u32)> = (0..5)
                .map(|t| (t as u32 % COLS, (t + i) as u32 % ROWS))
                .collect();
            (coords, cells)
        })
        .collect();
    let inputs: Vec<&SeqInputs> = batch.iter().collect();
    for kind in [BackboneKind::SamLstm, BackboneKind::Lstm, BackboneKind::Gru] {
        let mut b1 = build(kind);
        let o1 = b1.forward_train_batch(&inputs, 1);
        let mut b8 = build(kind);
        let o8 = b8.forward_train_batch(&inputs, 8);
        for ((h1, _), (h8, _)) in o1.iter().zip(&o8) {
            assert_eq!(h1, h8, "{kind:?}");
        }
        assert_eq!(memory_of(&b1), memory_of(&b8), "{kind:?}");
        // Empty job lists are a no-op at any thread count.
        let mut g = b1.zero_grads();
        b1.backward_batch(&[], &mut g, 8);
        assert!(grad_tensors(&g).iter().all(|t| t.iter().all(|v| *v == 0.0)));
    }
}
