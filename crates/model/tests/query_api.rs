//! Property tests for the unified `Query` API: `search` / `search_batch`
//! must be **bit-identical** to the pre-redesign `knn*` code paths on
//! random corpora. The historical pipelines are re-implemented here,
//! verbatim, on top of `EmbeddingStore` (whose scan kernels the redesign
//! did not touch) so the comparison is against the genuine old behaviour,
//! not against the forwards.

use neutraj_measures::{Hausdorff, Measure, Neighbor};
use neutraj_model::{
    AnnParams, BackboneKind, HnswParams, NeuTrajModel, Query, SimilarityDb, TrainConfig,
};
use neutraj_trajectory::{BoundingBox, Grid, Point, Trajectory};
use proptest::prelude::*;

fn model() -> NeuTrajModel {
    let cfg = TrainConfig {
        backbone: BackboneKind::SamLstm,
        dim: 8,
        seed: 23,
        ..TrainConfig::neutraj()
    };
    let grid = Grid::new(BoundingBox::new(0.0, 0.0, 1000.0, 500.0), 50.0).unwrap();
    NeuTrajModel::untrained(cfg, grid)
}

/// A deterministic trajectory of `len` points, shaped by `id`.
fn traj(id: u64, len: usize) -> Trajectory {
    Trajectory::new_unchecked(
        id,
        (0..len)
            .map(|k| {
                let t = k as f64;
                let i = id as f64;
                Point::new(
                    500.0 + 450.0 * (0.41 * t + 0.17 * i).sin(),
                    250.0 + 220.0 * (0.19 * t - 0.31 * i).cos(),
                )
            })
            .collect(),
    )
}

fn db_from(lens: &[usize]) -> (SimilarityDb, Vec<Trajectory>) {
    let corpus: Vec<Trajectory> = lens
        .iter()
        .enumerate()
        .map(|(i, &len)| traj(i as u64, len))
        .collect();
    (
        SimilarityDb::with_corpus(model(), corpus.clone(), 2),
        corpus,
    )
}

// --- Pre-redesign reference pipelines (verbatim reimplementations) -----

fn old_knn(db: &SimilarityDb, query: &Trajectory, k: usize) -> Vec<Neighbor> {
    let qe = db.model().embed(query);
    db.store().knn(&qe, k)
}

fn old_knn_batch(db: &SimilarityDb, queries: &[Trajectory], k: usize) -> Vec<Vec<Neighbor>> {
    let qembs = db.model().embed_batch(queries);
    let qrefs: Vec<&[f64]> = qembs.iter().map(|e| e.as_slice()).collect();
    db.store().knn_batch(&qrefs, k)
}

fn old_knn_of(db: &SimilarityDb, idx: usize, k: usize) -> Vec<Neighbor> {
    db.store()
        .knn(db.embedding(idx), k + 1)
        .into_iter()
        .filter(|n| n.index != idx)
        .take(k)
        .collect()
}

fn old_knn_reranked_batch(
    db: &SimilarityDb,
    queries: &[Trajectory],
    measure: &dyn Measure,
    shortlist: usize,
    k: usize,
) -> Vec<Vec<Neighbor>> {
    let grid = db.model().grid();
    let shorts = old_knn_batch(db, queries, shortlist);
    shorts
        .into_iter()
        .zip(queries)
        .map(|(short, query)| {
            let q = grid.rescale_trajectory(query);
            let mut out: Vec<Neighbor> = short
                .into_iter()
                .map(|n| Neighbor {
                    index: n.index,
                    dist: measure.dist(
                        q.points(),
                        grid.rescale_trajectory(db.get(n.index).unwrap()).points(),
                    ),
                })
                .collect();
            out.sort_by(|a, b| {
                a.dist
                    .partial_cmp(&b.dist)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.index.cmp(&b.index))
            });
            out.truncate(k);
            out
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// `search` with each target kind is bit-identical to the historical
    /// `knn` / `knn_embedding` / `knn_of` pipelines.
    #[test]
    fn search_bit_identical_to_old_scalar_paths(
        lens in prop::collection::vec(2usize..30, 8..=40),
        k in 1usize..12,
        probe in 0usize..8,
    ) {
        let (db, _corpus) = db_from(&lens);
        let q = Query::new(k);
        // Ad-hoc trajectory target == old knn.
        let ad_hoc = traj(999, 3 + probe * 2);
        prop_assert_eq!(db.search(&ad_hoc, &q).unwrap(), old_knn(&db, &ad_hoc, k));
        // Raw embedding target == old knn_embedding.
        let emb = db.embedding(probe).to_vec();
        prop_assert_eq!(db.search(&emb[..], &q).unwrap(), db.store().knn(&emb, k));
        // Stored target == old knn_of (self-excluded).
        prop_assert_eq!(db.search(probe, &q).unwrap(), old_knn_of(&db, probe, k));
    }

    /// `search_batch` (plain and re-ranked) is bit-identical to the
    /// historical `knn_batch` / `knn_reranked_batch` pipelines, and the
    /// re-ranked single-query `search` matches the batch's first row.
    #[test]
    fn search_batch_bit_identical_to_old_batch_paths(
        lens in prop::collection::vec(2usize..30, 8..=40),
        qlens in prop::collection::vec(2usize..30, 1..=9),
        k in 1usize..8,
        extra in 0usize..20,
    ) {
        let (db, _corpus) = db_from(&lens);
        let queries: Vec<Trajectory> = qlens
            .iter()
            .enumerate()
            .map(|(i, &len)| traj(500 + i as u64, len))
            .collect();
        let shortlist = k + extra;
        prop_assert_eq!(
            db.search_batch(&queries, &Query::new(k)).unwrap(),
            old_knn_batch(&db, &queries, k)
        );
        let reranked = Query::new(k).shortlist(shortlist).rerank(&Hausdorff);
        let got = db.search_batch(&queries, &reranked).unwrap();
        prop_assert_eq!(
            &got,
            &old_knn_reranked_batch(&db, &queries, &Hausdorff, shortlist, k)
        );
        prop_assert_eq!(&db.search(&queries[0], &reranked).unwrap(), &got[0]);
    }

    /// `.shortlist_ann(nlists)` — probing every inverted list — is
    /// **bit-identical** to the exhaustive scan: the lists partition the
    /// corpus, the per-candidate arithmetic is the same norm-trick
    /// expression built from the same `dot`, and the bounded heap's
    /// `(dist, index)` total order is insertion-order independent. Holds
    /// at every corpus-embedding thread count (the embeddings themselves
    /// are thread-invariant, so the index and the scan must be too), and
    /// composes with exact re-ranking.
    #[test]
    fn ann_full_probe_bit_identical_to_exhaustive_scan(
        lens in prop::collection::vec(2usize..30, 12..=40),
        qlens in prop::collection::vec(2usize..30, 1..=6),
        k in 1usize..8,
        nlists in 1usize..9,
    ) {
        let queries: Vec<Trajectory> = qlens
            .iter()
            .enumerate()
            .map(|(i, &len)| traj(700 + i as u64, len))
            .collect();
        type Rankings = Vec<Vec<Neighbor>>;
        let mut per_thread: Vec<(Rankings, Rankings)> = Vec::new();
        for threads in [1usize, 2, 4] {
            let corpus: Vec<Trajectory> = lens
                .iter()
                .enumerate()
                .map(|(i, &len)| traj(i as u64, len))
                .collect();
            let mut db = SimilarityDb::with_corpus(model(), corpus, threads);
            db.build_ann_index(&AnnParams { nlists, ..Default::default() })
                .unwrap();
            let nl = db.ann_index().unwrap().nlists();
            let exhaustive = db.search_batch(&queries, &Query::new(k)).unwrap();
            let ann = db
                .search_batch(&queries, &Query::new(k).shortlist_ann(nl))
                .unwrap();
            prop_assert_eq!(&exhaustive, &ann, "threads {}", threads);
            let rr = Query::new(k).shortlist(k + 5).rerank(&Hausdorff);
            let rr_ex = db.search_batch(&queries, &rr).unwrap();
            let rr_ann = db
                .search_batch(&queries, &rr.shortlist_ann(nl))
                .unwrap();
            prop_assert_eq!(&rr_ex, &rr_ann, "reranked, threads {}", threads);
            per_thread.push((ann, rr_ann));
        }
        // Thread-count invariance of the whole ANN pipeline.
        prop_assert_eq!(&per_thread[0], &per_thread[1]);
        prop_assert_eq!(&per_thread[0], &per_thread[2]);
    }

    /// `.shortlist_graph(ef)` with `ef >= n` — the beam wide enough to
    /// enumerate the whole corpus — is **bit-identical** to the
    /// exhaustive scan: the degenerate beam visits every row, computes
    /// the same squared distance per candidate, and the `(dist, index)`
    /// total order is traversal-order independent. The graph itself must
    /// be byte-identical across build thread counts (the two-phase
    /// round-based construction is scheduled deterministically), so the
    /// whole pipeline is thread-invariant, and it composes with exact
    /// re-ranking.
    #[test]
    fn graph_ef_max_matches_exhaustive_scan(
        lens in prop::collection::vec(2usize..30, 12..=40),
        qlens in prop::collection::vec(2usize..30, 1..=6),
        k in 1usize..8,
    ) {
        let queries: Vec<Trajectory> = qlens
            .iter()
            .enumerate()
            .map(|(i, &len)| traj(800 + i as u64, len))
            .collect();
        type Rankings = Vec<Vec<Neighbor>>;
        let mut per_thread: Vec<(Vec<u8>, Rankings, Rankings)> = Vec::new();
        for threads in [1usize, 2, 4] {
            let corpus: Vec<Trajectory> = lens
                .iter()
                .enumerate()
                .map(|(i, &len)| traj(i as u64, len))
                .collect();
            let n = corpus.len();
            let mut db = SimilarityDb::with_corpus(model(), corpus, threads);
            db.build_graph_index(&HnswParams::default(), threads).unwrap();
            let bytes = db.graph_index().unwrap().to_bytes();
            let exhaustive = db.search_batch(&queries, &Query::new(k)).unwrap();
            let graph = db
                .search_batch(&queries, &Query::new(k).shortlist_graph(n.max(k)))
                .unwrap();
            prop_assert_eq!(&exhaustive, &graph, "build threads {}", threads);
            let rr = Query::new(k).shortlist(k + 5).rerank(&Hausdorff);
            let rr_ex = db.search_batch(&queries, &rr).unwrap();
            let rr_graph = db
                .search_batch(&queries, &rr.shortlist_graph(n.max(k + 5)))
                .unwrap();
            prop_assert_eq!(&rr_ex, &rr_graph, "reranked, build threads {}", threads);
            per_thread.push((bytes, graph, rr_graph));
        }
        // Deterministic construction: identical serialized graph — and
        // therefore identical answers — at every build thread count.
        prop_assert_eq!(&per_thread[0], &per_thread[1]);
        prop_assert_eq!(&per_thread[0], &per_thread[2]);
    }
}
