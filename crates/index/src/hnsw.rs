//! Deterministic HNSW graph index for embedding shortlists.
//!
//! A hierarchical navigable-small-world graph over corpus row ids,
//! built to the same contract as [`IvfIndex`](crate::IvfIndex): the
//! index holds **no vectors** — callers supply a distance oracle over
//! row ids (the model crate closes over its `EmbeddingStore` with the
//! norm-trick squared-L2 so graph-internal distances are bit-identical
//! to the exhaustive scan's rerank).
//!
//! # Determinism
//!
//! Two sources of nondeterminism in textbook HNSW are removed:
//!
//! 1. **Level assignment** is a pure hash of `(seed, id)` — a
//!    splitmix64 draw mapped through the geometric CDF
//!    `floor(-ln(u) · mL)` with `mL = 1/ln(M)` — so levels do not
//!    depend on insertion order, thread count, or a shared RNG stream.
//!    Levels are therefore *not serialized*: the decoder recomputes
//!    them from the stored `(seed, m)`.
//! 2. **Construction order** follows the two-phase commit protocol of
//!    the threaded trainer (DESIGN.md §2): nodes are committed in
//!    rounds whose boundaries are pure functions of the id space.
//!    Phase A searches the *frozen* committed graph for every node of
//!    the round in parallel (each worker owns a disjoint slice of the
//!    plan buffer); phase B applies the results sequentially in id
//!    order — own adjacency first, then backlink merges grouped by
//!    target id. No phase ever observes a round-mate, so the committed
//!    bytes are identical for any thread count.
//!
//! All orderings use the `(distance, id)` total order (`f64::total_cmp`
//! breaks no ties — ids do), so search results are independent of
//! adjacency list order and heap internals.
//!
//! # Exhaustive anchor
//!
//! Like `nprobe = nlists` for IVF, `ef >= len` is the recall-1.0
//! anchor: [`HnswIndex::shortlist_into`] degenerates to enumerating
//! every row, so a full-ef graph query is bit-identical to the
//! exhaustive GEMM scan by construction (property-tested in the model
//! crate across thread counts and SIMD modes).

use std::cmp::Ordering;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

/// Magic header + format version of the serialized graph payload.
pub const HNSW_MAGIC: &[u8; 8] = b"NTHNSW01";

/// Hard cap on hashed levels (a corpus would need ~M^31 rows to draw
/// level 32 honestly; the cap keeps the level a `u8` with headroom).
const MAX_LEVEL: u8 = 31;
/// Rounds never exceed this many nodes, bounding phase-A plan memory
/// and keeping round-mate blindness (round members cannot link to each
/// other) a vanishing fraction of the graph at scale.
const ROUND_CAP: usize = 32_768;

/// Construction parameters for [`HnswIndex`].
///
/// `m` is the per-layer link budget on layers ≥ 1 (and the budget for
/// freshly selected links everywhere); `m0` is the larger layer-0
/// budget; `ef_construction` is the candidate beam width during build;
/// `seed` feeds the hashed level assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HnswParams {
    /// Max links per node on layers ≥ 1 (also the new-link budget).
    pub m: usize,
    /// Max links per node on layer 0 (usually `2 * m`).
    pub m0: usize,
    /// Candidate beam width while building (larger = better graph,
    /// slower build).
    pub ef_construction: usize,
    /// Seed for the hashed geometric level assignment.
    pub seed: u64,
}

impl Default for HnswParams {
    fn default() -> Self {
        HnswParams {
            m: 16,
            m0: 32,
            ef_construction: 100,
            seed: 2019,
        }
    }
}

impl HnswParams {
    /// Validates the parameter ranges the codec and the adjacency
    /// layout rely on (`u8` link counts, a usable level distribution).
    pub fn validate(&self) -> Result<(), String> {
        if self.m < 2 || self.m > 128 {
            return Err(format!("hnsw m must be in 2..=128, got {}", self.m));
        }
        if self.m0 < self.m || self.m0 > 255 {
            return Err(format!(
                "hnsw m0 must be in m..=255, got m0={} (m={})",
                self.m0, self.m
            ));
        }
        if self.ef_construction == 0 || self.ef_construction > (1 << 20) {
            return Err(format!(
                "hnsw ef_construction must be in 1..=2^20, got {}",
                self.ef_construction
            ));
        }
        Ok(())
    }
}

/// Work counters from one graph traversal (or a batch of them).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GraphSearchStats {
    /// Nodes whose adjacency list was expanded.
    pub hops: usize,
    /// Distance evaluations performed.
    pub candidates_scanned: usize,
}

/// Decode error for the `NTHNSW01` graph codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HnswCodecError(String);

impl std::fmt::Display for HnswCodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "hnsw decode: {}", self.0)
    }
}

impl std::error::Error for HnswCodecError {}

fn err(msg: impl Into<String>) -> HnswCodecError {
    HnswCodecError(msg.into())
}

/// A `(distance, id)` pair under the total order used everywhere in
/// this module: `f64::total_cmp` on distance, then id.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Cand {
    d: f64,
    id: u32,
}

impl Eq for Cand {}

impl Ord for Cand {
    fn cmp(&self, other: &Self) -> Ordering {
        self.d.total_cmp(&other.d).then(self.id.cmp(&other.id))
    }
}

impl PartialOrd for Cand {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Reusable per-thread search state: an epoch-stamped visited set and
/// the two beam heaps. Create once, reuse across queries — `begin`
/// resets in O(1) (the visited array is only rewritten on epoch wrap).
#[derive(Debug, Default)]
pub struct GraphScratch {
    visited: Vec<u32>,
    epoch: u32,
    cand: BinaryHeap<Reverse<Cand>>,
    res: BinaryHeap<Cand>,
}

impl GraphScratch {
    /// Fresh scratch; grows lazily to the graph size on first use.
    pub fn new() -> Self {
        Self::default()
    }

    fn begin(&mut self, n: usize) {
        if self.visited.len() < n {
            self.visited.resize(n, self.epoch);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.visited.fill(0);
            self.epoch = 1;
        }
        self.cand.clear();
        self.res.clear();
    }

    #[inline]
    fn mark(&mut self, id: u32) -> bool {
        let slot = &mut self.visited[id as usize];
        if *slot == self.epoch {
            false
        } else {
            *slot = self.epoch;
            true
        }
    }
}

/// Per-node build output: selected links for layers `0..=level`
/// (index = layer), each sorted ascending by `(distance, id)`.
type NodePlan = Vec<Vec<Cand>>;

/// A deterministic HNSW graph over row ids `0..len`.
///
/// Layer-0 adjacency is a flat `len × m0` arena (memory-lean at
/// N=10M); the sparse upper layers (~`len / m` nodes) live in a
/// `BTreeMap`. Adjacency lists are stored sorted ascending by id —
/// the canonical serialized form, validated on decode.
#[derive(Debug, Clone, PartialEq)]
pub struct HnswIndex {
    params: HnswParams,
    /// Cached `1 / ln(m)` for the geometric level draw.
    ml: f64,
    len: usize,
    /// Hashed level per node (recomputed on decode, never serialized).
    levels: Vec<u8>,
    /// Flat `len × m0` layer-0 adjacency; `base_len[i]` entries valid.
    base: Vec<u32>,
    base_len: Vec<u8>,
    /// Layers ≥ 1: id → one list per layer `1..=level`.
    upper: BTreeMap<u32, Vec<Vec<u32>>>,
    /// Lowest id among nodes of maximal level (derived, not stored).
    entry: Option<u32>,
    max_level: u8,
    /// Per-node count of layer-0 in-edges from **smaller** ids,
    /// maintained live by [`Self::set_links_sorted`] (never serialized;
    /// rebuilt while decoding). Invariant: once committed, every node
    /// `u > 0` keeps `indeg_lower[u] >= 1`, so by induction on ids the
    /// whole layer-0 graph stays reachable from node 0 — evictions that
    /// would zero a node's last lower in-edge are redirected.
    indeg_lower: Vec<u32>,
}

impl HnswIndex {
    // -- construction -------------------------------------------------

    fn empty(params: HnswParams) -> Self {
        HnswIndex {
            params,
            ml: 1.0 / (params.m as f64).ln(),
            len: 0,
            levels: Vec::new(),
            base: Vec::new(),
            base_len: Vec::new(),
            upper: BTreeMap::new(),
            entry: None,
            max_level: 0,
            indeg_lower: Vec::new(),
        }
    }

    /// The hashed geometric level of `id` under this graph's seed: a
    /// splitmix64 draw `u ∈ (0, 1]` through `floor(-ln(u) · mL)`.
    fn level_for(&self, id: u32) -> u8 {
        let mut z = self
            .params
            .seed
            .wrapping_add((u64::from(id) + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        // Top 53 bits → u ∈ (0, 1]; u = 1 maps to level 0.
        let u = ((z >> 11) as f64 + 1.0) / (1u64 << 53) as f64;
        let lvl = -u.ln() * self.ml;
        (lvl as usize).min(MAX_LEVEL as usize) as u8
    }

    /// Builds the graph over `n` rows with `threads`-way parallel
    /// rounds. `dist(a, b)` must return the (squared) distance between
    /// rows `a` and `b`; the committed bytes are identical for every
    /// `threads` value. Panics on invalid `params` (callers with typed
    /// error surfaces validate first).
    pub fn build<D>(params: HnswParams, n: usize, threads: usize, dist: &D) -> HnswIndex
    where
        D: Fn(u32, u32) -> f64 + Sync,
    {
        if let Err(e) = params.validate() {
            panic!("hnsw build: {e}");
        }
        let threads = threads.max(1);
        let mut g = HnswIndex::empty(params);
        let mut scratches: Vec<GraphScratch> = (0..threads).map(|_| GraphScratch::new()).collect();
        let mut start = 0usize;
        while start < n {
            // Round boundaries are pure functions of the id space: each
            // round commits half the already-committed prefix (capped at
            // ROUND_CAP), so the frozen graph a round searches is always
            // at least 2x the round itself — keeping backlink floods on
            // popular nodes (and thus pruning-induced orphans) rare.
            let size = (start / 2).clamp(1, ROUND_CAP).min(n - start);
            let end = start + size;
            g.grow_to(end);
            // Phase A: plan every round member against the frozen
            // committed graph. Workers own disjoint plan slices.
            let mut plans: Vec<NodePlan> = vec![NodePlan::new(); size];
            if threads == 1 || size == 1 {
                let s = &mut scratches[0];
                for (off, plan) in plans.iter_mut().enumerate() {
                    *plan = g.plan_node((start + off) as u32, dist, s);
                }
            } else {
                let chunk = size.div_ceil(threads);
                let gref = &g;
                std::thread::scope(|scope| {
                    for (ci, (chunk_plans, s)) in plans
                        .chunks_mut(chunk)
                        .zip(scratches.iter_mut())
                        .enumerate()
                    {
                        scope.spawn(move || {
                            for (off, plan) in chunk_plans.iter_mut().enumerate() {
                                *plan = gref.plan_node((start + ci * chunk + off) as u32, dist, s);
                            }
                        });
                    }
                });
            }
            // Phase B: commit sequentially in id order.
            g.commit_round(start, &plans, dist, threads);
            start = end;
        }
        g
    }

    /// Appends one node (id = `len`) and links it, exactly as a
    /// 1-node build round. `dist` must accept the new id. Returns the
    /// assigned id.
    pub fn insert<D: Fn(u32, u32) -> f64 + Sync>(&mut self, dist: &D) -> usize {
        let id = self.len as u32;
        self.grow_to(self.len + 1);
        let mut scratch = GraphScratch::new();
        let plan = self.plan_node(id, dist, &mut scratch);
        self.commit_round(id as usize, std::slice::from_ref(&plan), dist, 1);
        id as usize
    }

    /// Extends the node arena (levels, empty adjacency) to `n` rows
    /// without touching the committed entry point.
    fn grow_to(&mut self, n: usize) {
        while self.len < n {
            let id = self.len as u32;
            let lvl = self.level_for(id);
            self.levels.push(lvl);
            self.base.resize(self.base.len() + self.params.m0, 0);
            self.base_len.push(0);
            if lvl > 0 {
                self.upper.insert(id, vec![Vec::new(); lvl as usize]);
            }
            self.indeg_lower.push(0);
            self.len += 1;
        }
    }

    /// Phase A for one node: greedy-descend the layers above its
    /// level, then beam-search and heuristically select links on each
    /// layer it joins. Reads only committed state.
    fn plan_node<D: Fn(u32, u32) -> f64>(
        &self,
        id: u32,
        dist: &D,
        scratch: &mut GraphScratch,
    ) -> NodePlan {
        let lvl = self.levels[id as usize] as usize;
        let mut plan: NodePlan = vec![Vec::new(); lvl + 1];
        let Some(ep) = self.entry else {
            return plan; // first node: no links to make
        };
        let mut stats = GraphSearchStats::default();
        let mut dq = |x: u32| dist(id, x);
        let dep = dq(ep);
        // Same multi-entry beam shape as the query path: carrying the
        // whole frontier between layers keeps construction from wiring
        // each new node into a single directed pocket of its region.
        let mut frontier = vec![Cand { d: dep, id: ep }];
        for layer in (lvl + 1..=self.max_level as usize).rev() {
            frontier = self.beam_search(
                layer,
                &frontier,
                self.params.ef_construction,
                &mut dq,
                scratch,
                &mut stats,
            );
        }
        for layer in (0..=lvl.min(self.max_level as usize)).rev() {
            let cands = self.beam_search(
                layer,
                &frontier,
                self.params.ef_construction,
                &mut dq,
                scratch,
                &mut stats,
            );
            plan[layer] = heuristic_select(&cands, self.params.m, dist);
            frontier = cands;
        }
        plan
    }

    /// Phase B: write each round member's own adjacency in id order,
    /// then merge backlinks grouped by `(target, layer)` — merge
    /// results are computed (in parallel) against the pre-round state
    /// and applied sequentially, so the outcome is thread-invariant.
    fn commit_round<D>(&mut self, start: usize, plans: &[NodePlan], dist: &D, threads: usize)
    where
        D: Fn(u32, u32) -> f64 + Sync,
    {
        let mut reqs: Vec<(u32, u8, u32, f64)> = Vec::new();
        for (off, plan) in plans.iter().enumerate() {
            let id = (start + off) as u32;
            for (layer, sel) in plan.iter().enumerate() {
                self.set_links(id, layer, sel);
                for c in sel {
                    reqs.push((c.id, layer as u8, id, c.d));
                }
            }
        }
        // Group backlink requests by (target, layer); source ids are
        // unique within a group (one selected list per node+layer).
        reqs.sort_by_key(|r| (r.0, r.1, r.2));
        let mut jobs: Vec<(u32, u8, Vec<Cand>)> = Vec::new();
        for (target, layer, src, d) in reqs {
            match jobs.last_mut() {
                Some((t, l, incoming)) if *t == target && *l == layer => {
                    incoming.push(Cand { d, id: src });
                }
                _ => jobs.push((target, layer, vec![Cand { d, id: src }])),
            }
        }
        let mut outs: Vec<Vec<u32>> = vec![Vec::new(); jobs.len()];
        let merge = |gref: &HnswIndex, (target, layer, incoming): &(u32, u8, Vec<Cand>)| {
            gref.merge_backlinks(*target, *layer as usize, incoming, dist)
        };
        if threads == 1 || jobs.len() < 2 * threads {
            for (out, job) in outs.iter_mut().zip(jobs.iter()) {
                *out = merge(self, job);
            }
        } else {
            let chunk = jobs.len().div_ceil(threads);
            let gref = &*self;
            std::thread::scope(|scope| {
                for (out_chunk, job_chunk) in outs.chunks_mut(chunk).zip(jobs.chunks(chunk)) {
                    scope.spawn(move || {
                        for (out, job) in out_chunk.iter_mut().zip(job_chunk.iter()) {
                            *out = merge(gref, job);
                        }
                    });
                }
            });
        }
        // Apply sequentially in job order. Layer-0 merges pass through
        // the lower-in-edge guard: the merge decisions were computed in
        // parallel against pre-round state, but whether an eviction
        // orphans a node depends on the *live* in-degree counters, so
        // the fixup must see every earlier application this round.
        for ((target, layer, _), ids) in jobs.iter().zip(outs) {
            let ids = if *layer == 0 {
                self.protect_lower_edges(*target, ids, dist)
            } else {
                ids
            };
            self.set_links_sorted(*target, *layer as usize, ids);
        }
        self.repair_reachability(start, plans, dist);
        // Entry update: lowest id of the (new) maximal level wins.
        for off in 0..plans.len() {
            let id = (start + off) as u32;
            let lvl = self.levels[id as usize];
            if self.entry.is_none() || lvl > self.max_level {
                self.entry = Some(id);
                self.max_level = lvl;
            }
        }
    }

    /// Whether dropping the layer-0 edge `from -> x` is safe for the
    /// reachability invariant: it is unless the edge is `x`'s **last**
    /// in-edge from a smaller id.
    fn droppable(&self, from: u32, x: u32) -> bool {
        x < from || self.indeg_lower[x as usize] >= 2
    }

    /// The lower-in-edge guard for one layer-0 merge application:
    /// entries of `target`'s old list that `proposed` would drop but
    /// whose last lower in-edge this is get forced back in, evicting
    /// the farthest droppable proposed entries instead. Reads the
    /// *live* in-degree counters, so it must run sequentially in job
    /// order (thread-invariant: the job order and counters are pure
    /// functions of committed state).
    fn protect_lower_edges<D: Fn(u32, u32) -> f64>(
        &self,
        target: u32,
        proposed: Vec<u32>,
        dist: &D,
    ) -> Vec<u32> {
        let old = self.links(target, 0);
        let must_keep: Vec<u32> = old
            .iter()
            .copied()
            .filter(|&x| !proposed.contains(&x) && !self.droppable(target, x))
            .collect();
        if must_keep.is_empty() {
            return proposed;
        }
        let mut keep = proposed;
        let overflow = (keep.len() + must_keep.len()).saturating_sub(self.params.m0);
        if overflow > 0 {
            // Evict the farthest droppable entries. A proposed entry
            // not in the old list is a fresh edge — dropping it never
            // removes anything from the graph, so it is always safe.
            let mut victims: Vec<u32> = keep
                .iter()
                .copied()
                .filter(|&y| !old.contains(&y) || self.droppable(target, y))
                .collect();
            victims.sort_unstable_by(|&a, &b| {
                dist(target, a).total_cmp(&dist(target, b)).then(a.cmp(&b))
            });
            for &y in victims.iter().rev().take(overflow) {
                keep.retain(|&z| z != y);
            }
        }
        for &x in &must_keep {
            if keep.len() >= self.params.m0 {
                break; // every proposed entry is itself protected
            }
            keep.push(x);
        }
        keep.sort_unstable();
        keep
    }

    /// A freshly committed node whose backlinks were all pruned away by
    /// overflowing targets would have no layer-0 in-edge — invisible to
    /// every future beam search. Walk the round in id order and force
    /// each such node into the nearest selected target's list that can
    /// take it, evicting the worst droppable entry on overflow (never a
    /// node's last lower in-edge, which would just move the orphan).
    fn repair_reachability<D: Fn(u32, u32) -> f64>(
        &mut self,
        start: usize,
        plans: &[NodePlan],
        dist: &D,
    ) {
        for (off, plan) in plans.iter().enumerate() {
            let id = (start + off) as u32;
            let Some(sel) = plan.first().filter(|sel| !sel.is_empty()) else {
                continue; // bootstrap node: nothing to link back from
            };
            if sel
                .iter()
                .any(|c| self.links(c.id, 0).binary_search(&id).is_ok())
            {
                continue;
            }
            for c in sel {
                let t = c.id;
                let mut list = self.links(t, 0).to_vec();
                if list.len() >= self.params.m0 {
                    let evict = list
                        .iter()
                        .enumerate()
                        .filter(|(_, &x)| self.droppable(t, x))
                        .max_by(|(_, &a), (_, &b)| {
                            dist(t, a).total_cmp(&dist(t, b)).then(a.cmp(&b))
                        })
                        .map(|(pos, _)| pos);
                    match evict {
                        Some(pos) => {
                            list.remove(pos);
                        }
                        None => continue, // every entry protected: try next target
                    }
                }
                list.push(id);
                list.sort_unstable();
                self.set_links_sorted(t, 0, list);
                break;
            }
        }
    }

    /// The post-merge adjacency for `target` at `layer` given incoming
    /// backlinks: append under capacity, heuristic re-select on
    /// overflow. Pure (reads pre-round state only).
    fn merge_backlinks<D: Fn(u32, u32) -> f64>(
        &self,
        target: u32,
        layer: usize,
        incoming: &[Cand],
        dist: &D,
    ) -> Vec<u32> {
        let cap = if layer == 0 {
            self.params.m0
        } else {
            self.params.m
        };
        let old = self.links(target, layer);
        let mut ids: Vec<u32>;
        if old.len() + incoming.len() <= cap {
            ids = old.to_vec();
            ids.extend(incoming.iter().map(|c| c.id));
        } else {
            let mut cands: Vec<Cand> = old
                .iter()
                .map(|&x| Cand {
                    d: dist(target, x),
                    id: x,
                })
                .chain(incoming.iter().copied())
                .collect();
            cands.sort_unstable();
            ids = heuristic_select(&cands, cap, dist)
                .into_iter()
                .map(|c| c.id)
                .collect();
        }
        ids.sort_unstable();
        ids
    }

    fn set_links(&mut self, id: u32, layer: usize, sel: &[Cand]) {
        let mut ids: Vec<u32> = sel.iter().map(|c| c.id).collect();
        ids.sort_unstable();
        self.set_links_sorted(id, layer, ids);
    }

    fn set_links_sorted(&mut self, id: u32, layer: usize, ids: Vec<u32>) {
        if layer == 0 {
            debug_assert!(ids.len() <= self.params.m0);
            // Maintain the lower-in-degree counters: an edge `id -> x`
            // is a lower in-edge of `x` iff `id < x`. Both lists are
            // sorted, so diff them.
            let row = id as usize * self.params.m0;
            let old_len = self.base_len[id as usize] as usize;
            let old: Vec<u32> = self.base[row..row + old_len].to_vec();
            for &x in &old {
                if x > id && !ids.contains(&x) {
                    self.indeg_lower[x as usize] -= 1;
                }
            }
            for &x in &ids {
                if x > id && !old.contains(&x) {
                    self.indeg_lower[x as usize] += 1;
                }
            }
            self.base[row..row + ids.len()].copy_from_slice(&ids);
            self.base_len[id as usize] = ids.len() as u8;
        } else {
            debug_assert!(ids.len() <= self.params.m);
            let lists = self.upper.get_mut(&id).expect("node has upper layers");
            lists[layer - 1] = ids;
        }
    }

    /// The adjacency list of `id` at `layer` (sorted ascending by id).
    fn links(&self, id: u32, layer: usize) -> &[u32] {
        if layer == 0 {
            let row = id as usize * self.params.m0;
            &self.base[row..row + self.base_len[id as usize] as usize]
        } else {
            match self.upper.get(&id) {
                Some(lists) if layer <= lists.len() => &lists[layer - 1],
                _ => &[],
            }
        }
    }

    // -- search -------------------------------------------------------

    /// Beam search at `layer` from one or more entry points: returns up
    /// to `ef` nearest reachable nodes, sorted ascending by
    /// `(distance, id)`. Multiple entries matter on strongly clustered
    /// corpora: a single entry can land in a directed pocket whose only
    /// exits run through nodes farther than the beam's worst result —
    /// which the termination bound then prunes.
    fn beam_search<F: FnMut(u32) -> f64>(
        &self,
        layer: usize,
        entries: &[Cand],
        ef: usize,
        dq: &mut F,
        s: &mut GraphScratch,
        stats: &mut GraphSearchStats,
    ) -> Vec<Cand> {
        debug_assert!(!entries.is_empty());
        s.begin(self.len);
        for &e in entries {
            if s.mark(e.id) {
                s.cand.push(Reverse(e));
                s.res.push(e);
                if s.res.len() > ef {
                    s.res.pop();
                }
            }
        }
        while let Some(&Reverse(c)) = s.cand.peek() {
            let worst = *s.res.peek().expect("res never empty");
            if s.res.len() >= ef && c > worst {
                break;
            }
            s.cand.pop();
            stats.hops += 1;
            for &nb in self.links(c.id, layer) {
                if !s.mark(nb) {
                    continue;
                }
                let d = dq(nb);
                stats.candidates_scanned += 1;
                let cd = Cand { d, id: nb };
                if s.res.len() < ef || cd < *s.res.peek().expect("res never empty") {
                    s.cand.push(Reverse(cd));
                    s.res.push(cd);
                    if s.res.len() > ef {
                        s.res.pop();
                    }
                }
            }
        }
        let mut out: Vec<Cand> = s.res.drain().collect();
        out.sort_unstable();
        out
    }

    /// Collects up to `ef` shortlist candidates for a query into
    /// `out` as `(squared_distance, id)`, sorted ascending by
    /// `(distance, id)`. `dist_to_query(id)` is the caller's oracle.
    ///
    /// `ef >= len` degenerates to enumerating every row — the
    /// recall-1.0 anchor that makes a full-ef query bit-identical to
    /// the exhaustive scan regardless of graph connectivity.
    pub fn shortlist_into<F: FnMut(u32) -> f64>(
        &self,
        ef: usize,
        mut dist_to_query: F,
        scratch: &mut GraphScratch,
        out: &mut Vec<(f64, u32)>,
    ) -> GraphSearchStats {
        assert!(ef > 0, "ef must be positive");
        out.clear();
        let mut stats = GraphSearchStats::default();
        if self.len == 0 {
            return stats;
        }
        if ef >= self.len {
            out.extend((0..self.len as u32).map(|i| (dist_to_query(i), i)));
            stats.candidates_scanned = self.len;
            out.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            return stats;
        }
        let ep = self.entry.expect("non-empty graph has an entry");
        let dep = dist_to_query(ep);
        stats.candidates_scanned += 1;
        // Beam every layer at full width, seeding each layer with all
        // of the previous layer's results (the original Algorithm-5
        // shape, not the 1-best greedy-descent shortcut): on strongly
        // clustered corpora a single descent path can land in a
        // directed pocket of the right cluster that the layer-0 beam
        // cannot exit.
        let mut frontier = vec![Cand { d: dep, id: ep }];
        for layer in (1..=self.max_level as usize).rev() {
            frontier = self.beam_search(
                layer,
                &frontier,
                ef,
                &mut dist_to_query,
                scratch,
                &mut stats,
            );
        }
        let res = self.beam_search(0, &frontier, ef, &mut dist_to_query, scratch, &mut stats);
        out.extend(res.into_iter().map(|c| (c.d, c.id)));
        stats
    }

    // -- accessors ----------------------------------------------------

    /// Number of indexed rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the graph indexes zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The construction parameters.
    pub fn params(&self) -> &HnswParams {
        &self.params
    }

    /// The current entry point (lowest id of maximal level), if any.
    pub fn entry_point(&self) -> Option<u32> {
        self.entry
    }

    /// The maximal hashed level present in the graph.
    pub fn max_level(&self) -> u8 {
        self.max_level
    }

    // -- codec --------------------------------------------------------

    /// Serializes into the raw `NTHNSW01` payload: magic, `m`, `m0`,
    /// `ef_construction`, `seed`, `len` (u64 LE each), then for every
    /// node in id order, for every layer `0..=level(id)`: a `u8` count
    /// followed by that many `u32` neighbor ids in strictly ascending
    /// order. Levels are recomputed from `(seed, m)` on decode.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(48 + self.base.len() * 4);
        out.extend_from_slice(HNSW_MAGIC);
        for v in [
            self.params.m as u64,
            self.params.m0 as u64,
            self.params.ef_construction as u64,
            self.params.seed,
            self.len as u64,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for id in 0..self.len as u32 {
            for layer in 0..=self.levels[id as usize] as usize {
                let ids = self.links(id, layer);
                out.push(ids.len() as u8);
                for &nb in ids {
                    out.extend_from_slice(&nb.to_le_bytes());
                }
            }
        }
        out
    }

    /// Decodes a payload produced by [`HnswIndex::to_bytes`],
    /// validating every field: parameter ranges, per-layer link-count
    /// caps, strictly ascending in-range neighbor ids, no self-loops,
    /// upper-layer neighbors actually reaching that layer, and no
    /// trailing bytes.
    pub fn from_bytes(data: &[u8]) -> Result<HnswIndex, HnswCodecError> {
        let mut c = Cursor { data, pos: 0 };
        if c.take(8)? != HNSW_MAGIC {
            return Err(err("bad magic (not an NTHNSW01 graph?)"));
        }
        let m = c.u64()? as usize;
        let m0 = c.u64()? as usize;
        let ef_construction = c.u64()? as usize;
        let seed = c.u64()?;
        let len = c.u64()?;
        let params = HnswParams {
            m,
            m0,
            ef_construction,
            seed,
        };
        params.validate().map_err(err)?;
        if len > 1 << 33 {
            return Err(err(format!("implausible row count {len}")));
        }
        let len = len as usize;
        let mut g = HnswIndex::empty(params);
        g.grow_to(len);
        for id in 0..len as u32 {
            let lvl = g.levels[id as usize] as usize;
            for layer in 0..=lvl {
                let count = c.take(1)?[0] as usize;
                let cap = if layer == 0 { m0 } else { m };
                if count > cap {
                    return Err(err(format!(
                        "node {id} layer {layer} declares {count} links (cap {cap})"
                    )));
                }
                let mut ids = Vec::with_capacity(count);
                let mut prev: Option<u32> = None;
                for _ in 0..count {
                    let nb = u32::from_le_bytes(c.take(4)?.try_into().expect("4 bytes"));
                    if nb as usize >= len {
                        return Err(err(format!(
                            "node {id} layer {layer} links to out-of-range id {nb} (len {len})"
                        )));
                    }
                    if nb == id {
                        return Err(err(format!("node {id} layer {layer} links to itself")));
                    }
                    if prev.is_some_and(|p| nb <= p) {
                        return Err(err(format!(
                            "node {id} layer {layer} neighbor ids not strictly ascending"
                        )));
                    }
                    if layer > 0 && (g.levels[nb as usize] as usize) < layer {
                        return Err(err(format!(
                            "node {id} layer {layer} links to id {nb} whose level is below that \
                             layer"
                        )));
                    }
                    prev = Some(nb);
                    ids.push(nb);
                }
                g.set_links_sorted(id, layer, ids);
            }
        }
        if c.pos != data.len() {
            return Err(err(format!(
                "{} trailing bytes after the graph payload",
                data.len() - c.pos
            )));
        }
        // Derive the entry point: lowest id of maximal level.
        for id in 0..len as u32 {
            let lvl = g.levels[id as usize];
            if g.entry.is_none() || lvl > g.max_level {
                g.entry = Some(id);
                g.max_level = lvl;
            }
        }
        Ok(g)
    }
}

/// HNSW heuristic neighbor selection with keep-pruned-connections:
/// walk candidates in ascending `(distance, id)` order, keep `c` only
/// if no already-kept `s` is closer to `c` than the query is
/// (`dist(c, s) < d(c, q)` prunes), then backfill pruned candidates up
/// to `cap`.
fn heuristic_select<D: Fn(u32, u32) -> f64>(cands: &[Cand], cap: usize, dist: &D) -> Vec<Cand> {
    let mut selected: Vec<Cand> = Vec::with_capacity(cap);
    let mut pruned: Vec<Cand> = Vec::new();
    for &c in cands {
        if selected.len() >= cap {
            break;
        }
        if selected.iter().all(|s| dist(c.id, s.id) >= c.d) {
            selected.push(c);
        } else {
            pruned.push(c);
        }
    }
    for &c in &pruned {
        if selected.len() >= cap {
            break;
        }
        selected.push(c);
    }
    selected
}

/// Bounds-checked little-endian slice cursor (mirrors the IVF codec).
struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], HnswCodecError> {
        if self.data.len() - self.pos < n {
            return Err(err(format!(
                "truncated payload: need {n} bytes at offset {}, have {}",
                self.pos,
                self.data.len() - self.pos
            )));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u64(&mut self) -> Result<u64, HnswCodecError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random rows for a squared-L2 oracle.
    fn rows(n: usize, dim: usize, seed: u64) -> Vec<f64> {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        (0..n * dim)
            .map(|_| (next() % 1000) as f64 / 10.0)
            .collect()
    }

    fn l2sq(rows: &[f64], dim: usize, a: u32, b: u32) -> f64 {
        let ra = &rows[a as usize * dim..(a as usize + 1) * dim];
        let rb = &rows[b as usize * dim..(b as usize + 1) * dim];
        ra.iter()
            .zip(rb)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
    }

    fn build_over(rows: &[f64], dim: usize, n: usize, threads: usize) -> HnswIndex {
        let dist = |a: u32, b: u32| l2sq(rows, dim, a, b);
        HnswIndex::build(HnswParams::default(), n, threads, &dist)
    }

    #[test]
    fn build_is_byte_identical_across_thread_counts() {
        let (n, dim) = (700, 6);
        let data = rows(n, dim, 42);
        let reference = build_over(&data, dim, n, 1).to_bytes();
        for threads in [2, 3, 4, 8] {
            assert_eq!(
                build_over(&data, dim, n, threads).to_bytes(),
                reference,
                "thread count {threads} changed the committed graph"
            );
        }
    }

    #[test]
    fn full_ef_matches_brute_force() {
        let (n, dim) = (300, 4);
        let data = rows(n, dim, 7);
        let g = build_over(&data, dim, n, 2);
        let q = 17u32;
        let mut dq = |i: u32| l2sq(&data, dim, q, i);
        let mut out = Vec::new();
        let mut scratch = GraphScratch::new();
        g.shortlist_into(n, &mut dq, &mut scratch, &mut out);
        let mut brute: Vec<(f64, u32)> = (0..n as u32).map(|i| (dq(i), i)).collect();
        brute.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        assert_eq!(out, brute);
    }

    #[test]
    fn small_ef_search_finds_true_nearest() {
        let (n, dim) = (1200, 8);
        let data = rows(n, dim, 99);
        let g = build_over(&data, dim, n, 4);
        let mut scratch = GraphScratch::new();
        let mut hits = 0usize;
        let queries = 40usize;
        for q in 0..queries as u32 {
            let mut dq = |i: u32| l2sq(&data, dim, q, i);
            let truth = (0..n as u32)
                .map(|i| Cand { d: dq(i), id: i })
                .min()
                .unwrap();
            let mut out = Vec::new();
            let stats = g.shortlist_into(64, &mut dq, &mut scratch, &mut out);
            assert!(stats.hops > 0, "graph search must hop");
            assert!(out.len() <= 64);
            if out.first().map(|&(_, id)| id) == Some(truth.id) {
                hits += 1;
            }
        }
        assert!(
            hits * 10 >= queries * 9,
            "recall@1 too low: {hits}/{queries}"
        );
    }

    #[test]
    fn insert_matches_batch_build() {
        let (n, dim) = (180, 4);
        let data = rows(n, dim, 5);
        let dist = |a: u32, b: u32| l2sq(&data, dim, a, b);
        let batch = HnswIndex::build(HnswParams::default(), n, 2, &dist);
        // Rounds in `build` freeze the graph for a whole round, so a
        // node-at-a-time insert sees *more* committed context and the
        // graphs differ; what must hold is the level/derived state and
        // search quality, plus codec round-tripping.
        let mut inc = HnswIndex::build(HnswParams::default(), 0, 1, &dist);
        for _ in 0..n {
            inc.insert(&dist);
        }
        assert_eq!(inc.len(), batch.len());
        assert_eq!(inc.max_level(), batch.max_level());
        assert_eq!(inc.entry_point(), batch.entry_point());
        let mut out = Vec::new();
        let mut scratch = GraphScratch::new();
        let mut dq = |i: u32| dist(3, i);
        inc.shortlist_into(n, &mut dq, &mut scratch, &mut out);
        assert_eq!(out.len(), n);
        assert_eq!(out[0].1, 3);
    }

    #[test]
    fn codec_round_trips() {
        let (n, dim) = (250, 4);
        let data = rows(n, dim, 13);
        let g = build_over(&data, dim, n, 3);
        let bytes = g.to_bytes();
        let back = HnswIndex::from_bytes(&bytes).expect("round trip");
        assert_eq!(back, g);
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn codec_rejects_structural_corruption() {
        let (n, dim) = (120, 4);
        let data = rows(n, dim, 21);
        let g = build_over(&data, dim, n, 1);
        let bytes = g.to_bytes();
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xff;
        assert!(HnswIndex::from_bytes(&bad).is_err());
        // Truncation at every boundary-ish prefix.
        for cut in [7, 8, 20, 47, bytes.len() - 1] {
            assert!(HnswIndex::from_bytes(&bytes[..cut]).is_err());
        }
        // Trailing garbage.
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(HnswIndex::from_bytes(&trailing).is_err());
        // Implausible params (m = 1).
        let mut badm = bytes.clone();
        badm[8..16].copy_from_slice(&1u64.to_le_bytes());
        assert!(HnswIndex::from_bytes(&badm).is_err());
        // An adjacency byte pushed out of range: set a neighbor id to
        // len (first adjacency list starts right after the header).
        let mut badid = bytes.clone();
        let first_count = badid[48] as usize;
        if first_count > 0 {
            badid[49..53].copy_from_slice(&(n as u32).to_le_bytes());
            assert!(HnswIndex::from_bytes(&badid).is_err());
        }
    }

    #[test]
    fn empty_graph_is_valid() {
        let dist = |_: u32, _: u32| 0.0;
        let g = HnswIndex::build(HnswParams::default(), 0, 4, &dist);
        assert!(g.is_empty());
        assert_eq!(g.entry_point(), None);
        let back = HnswIndex::from_bytes(&g.to_bytes()).expect("empty round trip");
        assert_eq!(back, g);
        let mut out = vec![(0.0, 9u32)];
        let mut scratch = GraphScratch::new();
        let stats = g.shortlist_into(5, |_| 0.0, &mut scratch, &mut out);
        assert!(out.is_empty());
        assert_eq!(stats, GraphSearchStats::default());
    }

    #[test]
    fn params_validation_rejects_bad_ranges() {
        for p in [
            HnswParams {
                m: 1,
                ..HnswParams::default()
            },
            HnswParams {
                m: 129,
                ..HnswParams::default()
            },
            HnswParams {
                m0: 8,
                m: 16,
                ..HnswParams::default()
            },
            HnswParams {
                m0: 256,
                ..HnswParams::default()
            },
            HnswParams {
                ef_construction: 0,
                ..HnswParams::default()
            },
        ] {
            assert!(p.validate().is_err(), "{p:?} should be rejected");
        }
        assert!(HnswParams::default().validate().is_ok());
    }

    #[test]
    fn levels_are_geometricish() {
        let g = HnswIndex::empty(HnswParams::default());
        let n = 100_000u32;
        let mut counts = [0usize; 8];
        for id in 0..n {
            let l = g.level_for(id) as usize;
            counts[l.min(7)] += 1;
        }
        // With m=16, P(level ≥ 1) = 1/16: expect ~6250.
        let above = n as usize - counts[0];
        assert!(
            (4000..9000).contains(&above),
            "level distribution off: {above} nodes above level 0"
        );
    }
}
