//! Grid-based inverted index.

use crate::SpatialIndex;
use neutraj_trajectory::{Grid, GridCell, Trajectory};
use std::collections::HashMap;

/// An inverted index from grid cells to the trajectories passing through
/// them — the "grid based inverted index" of Table V.
///
/// A query gathers the posting lists of every cell the query trajectory
/// touches, dilated by `⌈radius / cell_size⌉` cells so that any trajectory
/// whose nearest approach to the query is within `radius` shares at least
/// one dilated cell (the dilation is measured in Chebyshev cells, which
/// dominates Euclidean distance, so the candidate set is a superset).
#[derive(Debug, Clone)]
pub struct GridInvertedIndex {
    grid: Grid,
    /// Cell linear index → sorted, deduplicated posting list.
    postings: HashMap<usize, Vec<usize>>,
    len: usize,
}

impl GridInvertedIndex {
    /// Builds the index for `corpus` over `grid`.
    pub fn build(grid: Grid, corpus: &[Trajectory]) -> Self {
        let mut postings: HashMap<usize, Vec<usize>> = HashMap::new();
        let mut len = 0usize;
        for (i, t) in corpus.iter().enumerate() {
            if t.is_empty() {
                continue;
            }
            len += 1;
            let mut cells: Vec<usize> = t
                .points()
                .iter()
                .map(|p| grid.index_of(grid.cell_of(*p)))
                .collect();
            cells.sort_unstable();
            cells.dedup();
            for c in cells {
                postings.entry(c).or_default().push(i);
            }
        }
        Self {
            grid,
            postings,
            len,
        }
    }

    /// The grid the index is built over.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Number of non-empty cells.
    pub fn occupied_cells(&self) -> usize {
        self.postings.len()
    }

    /// Posting list of a cell (empty slice when no trajectory crosses it).
    pub fn posting(&self, cell: GridCell) -> &[usize] {
        self.postings
            .get(&self.grid.index_of(cell))
            .map_or(&[], Vec::as_slice)
    }

    /// Candidates sharing at least one cell with the query's cell set
    /// dilated by `dilation` cells (Chebyshev).
    pub fn candidates_dilated(&self, query: &Trajectory, dilation: u32) -> Vec<usize> {
        let mut query_cells: Vec<GridCell> = query
            .points()
            .iter()
            .map(|p| self.grid.cell_of(*p))
            .collect();
        query_cells.sort_unstable_by_key(|c| (c.row, c.col));
        query_cells.dedup();
        let mut seen_cells: Vec<usize> = Vec::new();
        for qc in &query_cells {
            for wc in self.grid.scan_window(*qc, dilation) {
                seen_cells.push(self.grid.index_of(wc));
            }
        }
        seen_cells.sort_unstable();
        seen_cells.dedup();
        let mut out: Vec<usize> = seen_cells
            .into_iter()
            .filter_map(|c| self.postings.get(&c))
            .flatten()
            .copied()
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

impl SpatialIndex for GridInvertedIndex {
    fn candidates(&self, query: &Trajectory, radius: f64) -> Vec<usize> {
        let dilation = (radius / self.grid.cell_size()).ceil() as u32;
        self.candidates_dilated(query, dilation)
    }

    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neutraj_trajectory::{BoundingBox, Point};

    fn grid() -> Grid {
        Grid::new(BoundingBox::new(0.0, 0.0, 100.0, 100.0), 10.0).unwrap()
    }

    fn hline(id: u64, y: f64) -> Trajectory {
        Trajectory::new_unchecked(
            id,
            (0..10)
                .map(|k| Point::new(5.0 + 10.0 * k as f64, y))
                .collect(),
        )
    }

    #[test]
    fn build_and_postings() {
        let ts = vec![hline(0, 5.0), hline(1, 5.0), hline(2, 95.0)];
        let idx = GridInvertedIndex::build(grid(), &ts);
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.posting(GridCell::new(0, 0)), &[0, 1]);
        assert_eq!(idx.posting(GridCell::new(0, 9)), &[2]);
        assert!(idx.posting(GridCell::new(0, 5)).is_empty());
        assert_eq!(idx.occupied_cells(), 20);
    }

    #[test]
    fn zero_dilation_finds_cell_sharers() {
        let ts = vec![hline(0, 5.0), hline(1, 8.0), hline(2, 95.0)];
        let idx = GridInvertedIndex::build(grid(), &ts);
        // Lines 0 and 1 are in the same cell row; line 2 is far.
        let cands = idx.candidates_dilated(&ts[0], 0);
        assert_eq!(cands, vec![0, 1]);
    }

    #[test]
    fn dilation_expands_candidate_set() {
        let ts = vec![hline(0, 5.0), hline(1, 25.0), hline(2, 95.0)];
        let idx = GridInvertedIndex::build(grid(), &ts);
        assert_eq!(idx.candidates_dilated(&ts[0], 0), vec![0]);
        // y=25 is two cell-rows away: dilation 2 reaches it.
        assert_eq!(idx.candidates_dilated(&ts[0], 2), vec![0, 1]);
        let all = idx.candidates_dilated(&ts[0], 10);
        assert_eq!(all, vec![0, 1, 2]);
    }

    #[test]
    fn radius_based_candidates_are_superset_of_truth() {
        // Any trajectory whose true minimum point distance to the query is
        // within the radius must appear in the candidate set.
        let ts: Vec<Trajectory> = (0..10).map(|i| hline(i, 5.0 + 10.0 * i as f64)).collect();
        let idx = GridInvertedIndex::build(grid(), &ts);
        let radius = 25.0;
        let cands = idx.candidates(&ts[0], radius);
        for (i, t) in ts.iter().enumerate() {
            let min_d = t
                .points()
                .iter()
                .flat_map(|p| ts[0].points().iter().map(move |q| p.dist(q)))
                .fold(f64::INFINITY, f64::min);
            if min_d <= radius {
                assert!(
                    cands.contains(&i),
                    "lost trajectory {i} at min dist {min_d}"
                );
            }
        }
    }

    #[test]
    fn empty_trajectories_ignored() {
        let ts = vec![hline(0, 5.0), Trajectory::new_unchecked(1, vec![])];
        let idx = GridInvertedIndex::build(grid(), &ts);
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.candidates_dilated(&ts[0], 10), vec![0]);
    }
}
