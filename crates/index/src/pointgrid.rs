//! A uniform point-bucket grid for exact nearest-point queries.
//!
//! Built once per trajectory, a [`PointGrid`] answers "what is the exact
//! minimum squared distance from `p` to this point set?" by expanding
//! square rings of cells outward from `p`'s cell and stopping as soon as
//! the ring's lower bound proves no closer point can exist. This is the
//! inner `min` of the directed Hausdorff distance; the ring bound turns
//! its O(|B|) scan into a handful of bucket probes for clustered data.

use neutraj_trajectory::{BoundingBox, Point};

/// A uniform grid over a fixed point set, bucketing points by cell in CSR
/// layout (one contiguous `Vec<Point>` reordered by cell, plus per-cell
/// start offsets).
#[derive(Debug, Clone)]
pub struct PointGrid {
    bbox: BoundingBox,
    /// Cell side length (> 0 even for degenerate boxes).
    cell: f64,
    nx: usize,
    ny: usize,
    /// `starts[c]..starts[c + 1]` indexes `pts` for cell `c = cy * nx + cx`.
    starts: Vec<u32>,
    /// Points reordered so each cell's bucket is contiguous.
    pts: Vec<Point>,
}

impl PointGrid {
    /// Builds a grid over `points` with roughly one point per cell.
    /// Returns `None` for an empty point set.
    pub fn build(points: &[Point]) -> Option<Self> {
        if points.is_empty() {
            return None;
        }
        let bbox = BoundingBox::from_points(points);
        // Aim for ~1 point per cell on a square layout; clamp the per-axis
        // resolution so tiny or collinear sets still produce a valid grid.
        let side = (points.len() as f64).sqrt().ceil() as usize;
        let side = side.clamp(1, 256);
        let (w, h) = (bbox.width(), bbox.height());
        let extent = w.max(h);
        let cell = if extent > 0.0 {
            extent / side as f64
        } else {
            1.0
        };
        let nx = if cell > 0.0 {
            ((w / cell).floor() as usize + 1).min(side)
        } else {
            1
        };
        let ny = if cell > 0.0 {
            ((h / cell).floor() as usize + 1).min(side)
        } else {
            1
        };
        let cell_of = |p: &Point| -> usize {
            let cx = (((p.x - bbox.min_x) / cell) as usize).min(nx - 1);
            let cy = (((p.y - bbox.min_y) / cell) as usize).min(ny - 1);
            cy * nx + cx
        };
        // Counting sort into CSR buckets.
        let ncells = nx * ny;
        let mut counts = vec![0u32; ncells + 1];
        for p in points {
            counts[cell_of(p) + 1] += 1;
        }
        for c in 0..ncells {
            counts[c + 1] += counts[c];
        }
        let starts = counts.clone();
        let mut pts = vec![Point::ORIGIN; points.len()];
        let mut cursor = starts.clone();
        for p in points {
            let c = cell_of(p);
            pts[cursor[c] as usize] = *p;
            cursor[c] += 1;
        }
        Some(Self {
            bbox,
            cell,
            nx,
            ny,
            starts,
            pts,
        })
    }

    /// Number of bucketed points.
    pub fn len(&self) -> usize {
        self.pts.len()
    }

    /// Returns `true` when no points are bucketed (never for grids
    /// obtained from [`PointGrid::build`]).
    pub fn is_empty(&self) -> bool {
        self.pts.is_empty()
    }

    /// Exact minimum squared distance from `p` to the point set — unless
    /// the scan can prove the minimum cannot exceed-check usefully: once
    /// the running best drops to `cutoff_sq` or below, the scan stops and
    /// returns that (still an upper bound on the true minimum). Callers
    /// that only act when the result is **greater** than `cutoff_sq`
    /// therefore observe exact values whenever it matters.
    pub fn min_dist_sq_pruned(&self, p: Point, cutoff_sq: f64) -> f64 {
        self.min_dist_sq_from(p, cutoff_sq, f64::INFINITY)
    }

    /// [`Self::min_dist_sq_pruned`] seeded with a known member distance:
    /// `best` must be `f64::INFINITY` or the squared distance from `p` to
    /// some point of the set (an upper bound on the true minimum), so the
    /// returned value is still exact whenever it exceeds `cutoff_sq`.
    pub fn min_dist_sq_from(&self, p: Point, cutoff_sq: f64, mut best: f64) -> f64 {
        let cx = (((p.x - self.bbox.min_x) / self.cell) as isize).clamp(0, self.nx as isize - 1);
        let cy = (((p.y - self.bbox.min_y) / self.cell) as isize).clamp(0, self.ny as isize - 1);
        // Distance from p to the grid's bounding box: every bucketed point
        // is at least this far away, on every ring.
        let dx_box = (self.bbox.min_x - p.x).max(p.x - self.bbox.max_x).max(0.0);
        let dy_box = (self.bbox.min_y - p.y).max(p.y - self.bbox.max_y).max(0.0);
        let bb_sq = dx_box * dx_box + dy_box * dy_box;
        if bb_sq >= best {
            return best;
        }
        let max_ring = self.nx.max(self.ny);
        for r in 0..=max_ring as isize {
            // Every cell on ring r lies at Chebyshev cell-distance r from
            // (cx, cy), so its contents are at least (r - 1) cell widths
            // from any point projecting into (cx, cy)'s cell, *plus* the
            // box offset on each axis — a valid lower bound even when p
            // sits outside the grid (the r-excursion axis gains
            // (r-1)·cell on top of its box offset, the other axis keeps
            // its own box offset).
            if r >= 2 {
                let ring = (r - 1) as f64 * self.cell;
                if bb_sq + ring * ring >= best {
                    break;
                }
            }
            let (x0, x1) = (cx - r, cx + r);
            let (y0, y1) = (cy - r, cy + r);
            for y in y0..=y1 {
                if y < 0 || y >= self.ny as isize {
                    continue;
                }
                let on_rim = y == y0 || y == y1;
                let mut x = x0;
                while x <= x1 {
                    if x >= 0 && x < self.nx as isize {
                        self.scan_cell(x as usize, y as usize, p, &mut best);
                        if best <= cutoff_sq {
                            return best;
                        }
                    }
                    // Interior rows of the ring only touch the two rim
                    // columns; rim rows scan the full span.
                    x += if on_rim || x == x1 { 1 } else { x1 - x0 };
                }
            }
        }
        best
    }

    #[inline]
    fn scan_cell(&self, cx: usize, cy: usize, p: Point, best: &mut f64) {
        let c = cy * self.nx + cx;
        let (lo, hi) = (self.starts[c] as usize, self.starts[c + 1] as usize);
        for q in &self.pts[lo..hi] {
            let d = p.dist_sq(q);
            if d < *best {
                *best = d;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_min_sq(p: Point, pts: &[Point]) -> f64 {
        pts.iter()
            .map(|q| p.dist_sq(q))
            .fold(f64::INFINITY, f64::min)
    }

    #[test]
    fn empty_set_builds_none() {
        assert!(PointGrid::build(&[]).is_none());
    }

    #[test]
    fn exact_min_on_scattered_points() {
        let pts: Vec<Point> = (0..200u64)
            .map(|i| {
                let h = i.wrapping_mul(0x9E3779B97F4A7C15);
                Point::new((h % 1000) as f64 * 0.1, ((h >> 17) % 1000) as f64 * 0.1)
            })
            .collect();
        let g = PointGrid::build(&pts).unwrap();
        assert_eq!(g.len(), pts.len());
        assert!(!g.is_empty());
        for i in (0..200u64).step_by(7) {
            let h = i.wrapping_mul(0xD1B54A32D192ED03);
            let p = Point::new(
                (h % 1200) as f64 * 0.1 - 10.0,
                ((h >> 13) % 1200) as f64 * 0.1,
            );
            assert_eq!(
                g.min_dist_sq_pruned(p, f64::NEG_INFINITY),
                naive_min_sq(p, &pts)
            );
        }
    }

    #[test]
    fn degenerate_sets_are_exact() {
        // All-identical points (zero-extent bbox) and collinear points.
        let same = vec![Point::new(3.0, 4.0); 5];
        let g = PointGrid::build(&same).unwrap();
        assert_eq!(
            g.min_dist_sq_pruned(Point::new(0.0, 0.0), f64::NEG_INFINITY),
            25.0
        );
        let line: Vec<Point> = (0..50).map(|i| Point::new(i as f64, 2.0)).collect();
        let g = PointGrid::build(&line).unwrap();
        let p = Point::new(17.4, -1.0);
        assert_eq!(
            g.min_dist_sq_pruned(p, f64::NEG_INFINITY),
            naive_min_sq(p, &line)
        );
    }

    #[test]
    fn cutoff_stops_early_without_affecting_threshold_semantics() {
        let pts: Vec<Point> = (0..100).map(|i| Point::new(i as f64, 0.0)).collect();
        let g = PointGrid::build(&pts).unwrap();
        let p = Point::new(50.2, 0.0);
        let exact = naive_min_sq(p, &pts);
        // A generous cutoff lets the scan stop at any point within it; the
        // returned value must still be <= cutoff (so a "> cutoff" test
        // behaves exactly as with the true minimum).
        let got = g.min_dist_sq_pruned(p, 100.0);
        assert!(got <= 100.0);
        assert!(got >= exact);
        // With a cutoff below the true minimum the result is exact.
        assert_eq!(g.min_dist_sq_pruned(p, exact * 0.5), exact);
    }
}
