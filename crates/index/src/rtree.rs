//! STR bulk-loaded R-tree over trajectory MBRs.

use crate::SpatialIndex;
use neutraj_trajectory::{BoundingBox, Trajectory};

/// Maximum entries per node (fan-out).
const NODE_CAPACITY: usize = 16;

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        bbox: BoundingBox,
        /// `(mbr, corpus index)` entries.
        entries: Vec<(BoundingBox, usize)>,
    },
    Internal {
        bbox: BoundingBox,
        children: Vec<Node>,
    },
}

impl Node {
    fn bbox(&self) -> &BoundingBox {
        match self {
            Node::Leaf { bbox, .. } | Node::Internal { bbox, .. } => bbox,
        }
    }
}

/// A static R-tree over trajectory minimum bounding rectangles, built once
/// with Sort-Tile-Recursive packing (Leutenegger et al.) — the "bounding
/// box r-tree index" of Table V.
#[derive(Debug, Clone)]
pub struct RTree {
    root: Option<Node>,
    len: usize,
}

impl RTree {
    /// Bulk-loads the index from a corpus.
    pub fn build(corpus: &[Trajectory]) -> Self {
        let entries: Vec<(BoundingBox, usize)> = corpus
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.is_empty())
            .map(|(i, t)| (t.mbr(), i))
            .collect();
        let len = entries.len();
        if entries.is_empty() {
            return Self { root: None, len: 0 };
        }
        let leaves = str_pack_leaves(entries);
        let root = build_upward(leaves);
        Self {
            root: Some(root),
            len,
        }
    }

    /// Indices of all trajectories whose MBR intersects `query`.
    pub fn range_query(&self, query: &BoundingBox) -> Vec<usize> {
        let mut out = Vec::new();
        if let Some(root) = &self.root {
            let mut stack = vec![root];
            while let Some(node) = stack.pop() {
                if !node.bbox().intersects(query) {
                    continue;
                }
                match node {
                    Node::Leaf { entries, .. } => {
                        for (bb, idx) in entries {
                            if bb.intersects(query) {
                                out.push(*idx);
                            }
                        }
                    }
                    Node::Internal { children, .. } => {
                        stack.extend(children.iter());
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Indices of trajectories whose MBR lies within `radius` of `bbox`
    /// (MBR-to-MBR minimum distance).
    pub fn within(&self, bbox: &BoundingBox, radius: f64) -> Vec<usize> {
        let mut out = Vec::new();
        if let Some(root) = &self.root {
            let mut stack = vec![root];
            while let Some(node) = stack.pop() {
                if node.bbox().min_dist_box(bbox) > radius {
                    continue;
                }
                match node {
                    Node::Leaf { entries, .. } => {
                        for (bb, idx) in entries {
                            if bb.min_dist_box(bbox) <= radius {
                                out.push(*idx);
                            }
                        }
                    }
                    Node::Internal { children, .. } => {
                        stack.extend(children.iter());
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// The `k` indexed trajectories with smallest MBR-to-MBR distance to
    /// `query`, ascending (ties by index) — best-first search (Hjaltason
    /// & Samet). Because MBR distance lower-bounds Hausdorff and Fréchet,
    /// this is an exact-k candidate generator for those measures: the
    /// true top-k under the measure is contained in the MBR top-k' for a
    /// sufficiently enlarged k', and the returned bound values tell the
    /// caller when it may stop refining.
    pub fn knn_mbr(&self, query: &BoundingBox, k: usize) -> Vec<(usize, f64)> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        /// Heap entry ordered by (distance, tie) — f64 wrapped for Ord.
        struct Entry<'a> {
            dist: f64,
            node: Option<&'a Node>,
            leaf: Option<usize>,
        }
        impl PartialEq for Entry<'_> {
            fn eq(&self, other: &Self) -> bool {
                self.dist == other.dist && self.leaf == other.leaf
            }
        }
        impl Eq for Entry<'_> {}
        impl PartialOrd for Entry<'_> {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Entry<'_> {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.dist
                    .partial_cmp(&other.dist)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(self.leaf.cmp(&other.leaf))
            }
        }

        let mut out = Vec::with_capacity(k.min(self.len));
        let Some(root) = &self.root else {
            return out;
        };
        if k == 0 {
            return out;
        }
        let mut heap: BinaryHeap<Reverse<Entry>> = BinaryHeap::new();
        heap.push(Reverse(Entry {
            dist: root.bbox().min_dist_box(query),
            node: Some(root),
            leaf: None,
        }));
        while let Some(Reverse(e)) = heap.pop() {
            match (e.node, e.leaf) {
                (_, Some(idx)) => {
                    out.push((idx, e.dist));
                    if out.len() == k {
                        break;
                    }
                }
                (Some(Node::Internal { children, .. }), _) => {
                    for c in children {
                        heap.push(Reverse(Entry {
                            dist: c.bbox().min_dist_box(query),
                            node: Some(c),
                            leaf: None,
                        }));
                    }
                }
                (Some(Node::Leaf { entries, .. }), _) => {
                    for (bb, idx) in entries {
                        heap.push(Reverse(Entry {
                            dist: bb.min_dist_box(query),
                            node: None,
                            leaf: Some(*idx),
                        }));
                    }
                }
                (None, None) => unreachable!("entry must carry a node or a leaf"),
            }
        }
        out
    }

    /// Tree height (0 for an empty tree, 1 for a single leaf).
    pub fn height(&self) -> usize {
        fn depth(node: &Node) -> usize {
            match node {
                Node::Leaf { .. } => 1,
                Node::Internal { children, .. } => {
                    1 + children.iter().map(depth).max().unwrap_or(0)
                }
            }
        }
        self.root.as_ref().map_or(0, depth)
    }
}

impl SpatialIndex for RTree {
    fn candidates(&self, query: &Trajectory, radius: f64) -> Vec<usize> {
        self.within(&query.mbr(), radius)
    }

    fn len(&self) -> usize {
        self.len
    }
}

/// STR leaf packing: sort by center x, slice into √(n/M) vertical runs,
/// sort each run by center y, chunk into leaves of `NODE_CAPACITY`.
fn str_pack_leaves(mut entries: Vec<(BoundingBox, usize)>) -> Vec<Node> {
    let n = entries.len();
    let leaf_count = n.div_ceil(NODE_CAPACITY);
    let slices = (leaf_count as f64).sqrt().ceil() as usize;
    let per_slice = n.div_ceil(slices.max(1));
    entries.sort_by(|a, b| {
        a.0.center()
            .x
            .partial_cmp(&b.0.center().x)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut leaves = Vec::with_capacity(leaf_count);
    for slice in entries.chunks_mut(per_slice.max(1)) {
        slice.sort_by(|a, b| {
            a.0.center()
                .y
                .partial_cmp(&b.0.center().y)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        for chunk in slice.chunks(NODE_CAPACITY) {
            let bbox = chunk
                .iter()
                .fold(BoundingBox::EMPTY, |bb, (b, _)| bb.union(b));
            leaves.push(Node::Leaf {
                bbox,
                entries: chunk.to_vec(),
            });
        }
    }
    leaves
}

/// Packs nodes level by level until a single root remains.
fn build_upward(mut level: Vec<Node>) -> Node {
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(NODE_CAPACITY));
        // Sort level by center-x/center-y tiles again for packing quality.
        level.sort_by(|a, b| {
            let (ca, cb) = (a.bbox().center(), b.bbox().center());
            ca.x.partial_cmp(&cb.x)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(ca.y.partial_cmp(&cb.y).unwrap_or(std::cmp::Ordering::Equal))
        });
        let mut iter = level.into_iter().peekable();
        while iter.peek().is_some() {
            let children: Vec<Node> = iter.by_ref().take(NODE_CAPACITY).collect();
            let bbox = children
                .iter()
                .fold(BoundingBox::EMPTY, |bb, c| bb.union(c.bbox()));
            next.push(Node::Internal { bbox, children });
        }
        level = next;
    }
    level.into_iter().next().expect("non-empty level")
}

#[cfg(test)]
mod tests {
    use super::*;
    use neutraj_trajectory::Point;
    use rand::{Rng, SeedableRng};

    fn corpus(n: usize, seed: u64) -> Vec<Trajectory> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n as u64)
            .map(|id| {
                let x0: f64 = rng.gen_range(0.0..1000.0);
                let y0: f64 = rng.gen_range(0.0..1000.0);
                Trajectory::new_unchecked(
                    id,
                    (0..6)
                        .map(|k| Point::new(x0 + 10.0 * k as f64, y0 + 5.0 * k as f64))
                        .collect(),
                )
            })
            .collect()
    }

    #[test]
    fn range_query_matches_linear_scan() {
        let ts = corpus(300, 1);
        let tree = RTree::build(&ts);
        assert_eq!(tree.len(), 300);
        let query = BoundingBox::new(200.0, 300.0, 500.0, 700.0);
        let expected: Vec<usize> = ts
            .iter()
            .enumerate()
            .filter(|(_, t)| t.mbr().intersects(&query))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(tree.range_query(&query), expected);
    }

    #[test]
    fn within_matches_linear_scan() {
        let ts = corpus(200, 2);
        let tree = RTree::build(&ts);
        let q = ts[17].mbr();
        for radius in [0.0, 50.0, 300.0] {
            let expected: Vec<usize> = ts
                .iter()
                .enumerate()
                .filter(|(_, t)| t.mbr().min_dist_box(&q) <= radius)
                .map(|(i, _)| i)
                .collect();
            assert_eq!(tree.within(&q, radius), expected, "radius {radius}");
        }
    }

    #[test]
    fn candidates_prune_but_never_lose() {
        let ts = corpus(400, 3);
        let tree = RTree::build(&ts);
        let cands = tree.candidates(&ts[0], 100.0);
        // Prunes something…
        assert!(cands.len() < ts.len());
        // …but keeps everything genuinely near (linear-scan superset check).
        for (i, t) in ts.iter().enumerate() {
            if t.mbr().min_dist_box(&ts[0].mbr()) <= 100.0 {
                assert!(cands.contains(&i), "lost candidate {i}");
            }
        }
        // Query trajectory finds itself at radius 0.
        assert!(tree.candidates(&ts[0], 0.0).contains(&0));
    }

    #[test]
    fn empty_and_tiny_corpora() {
        let tree = RTree::build(&[]);
        assert!(tree.is_empty());
        assert_eq!(tree.height(), 0);
        assert!(tree
            .range_query(&BoundingBox::new(0.0, 0.0, 1.0, 1.0))
            .is_empty());
        let ts = corpus(1, 4);
        let tree = RTree::build(&ts);
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.height(), 1);
        assert_eq!(tree.range_query(&ts[0].mbr()), vec![0]);
    }

    #[test]
    fn knn_mbr_matches_linear_scan() {
        let ts = corpus(250, 8);
        let tree = RTree::build(&ts);
        let q = ts[42].mbr();
        for k in [1usize, 7, 30] {
            let got = tree.knn_mbr(&q, k);
            // Linear-scan reference with the same tie-break.
            let mut expected: Vec<(usize, f64)> = ts
                .iter()
                .enumerate()
                .map(|(i, t)| (i, t.mbr().min_dist_box(&q)))
                .collect();
            expected.sort_by(|a, b| {
                a.1.partial_cmp(&b.1)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.0.cmp(&b.0))
            });
            expected.truncate(k);
            assert_eq!(got.len(), k);
            for ((gi, gd), (ei, ed)) in got.iter().zip(&expected) {
                assert_eq!(gi, ei, "k={k}");
                assert!((gd - ed).abs() < 1e-12);
            }
        }
        // Self query: item 42 at distance 0 first.
        assert_eq!(tree.knn_mbr(&q, 1)[0], (42, 0.0));
    }

    #[test]
    fn knn_mbr_edge_cases() {
        let empty = RTree::build(&[]);
        assert!(empty
            .knn_mbr(&BoundingBox::new(0.0, 0.0, 1.0, 1.0), 5)
            .is_empty());
        let ts = corpus(5, 9);
        let tree = RTree::build(&ts);
        assert!(tree.knn_mbr(&ts[0].mbr(), 0).is_empty());
        // Over-asking returns everything.
        assert_eq!(tree.knn_mbr(&ts[0].mbr(), 100).len(), 5);
    }

    #[test]
    fn tree_is_balanced_log_height() {
        let ts = corpus(2000, 5);
        let tree = RTree::build(&ts);
        // 2000 entries at fan-out 16: leaves ≈ 125, height 3.
        assert!(tree.height() <= 4, "height {}", tree.height());
    }

    #[test]
    fn skips_empty_trajectories() {
        let mut ts = corpus(5, 6);
        ts.push(Trajectory::new_unchecked(99, vec![]));
        let tree = RTree::build(&ts);
        assert_eq!(tree.len(), 5);
        let all = tree.within(&BoundingBox::new(-1e9, -1e9, 1e9, 1e9), 0.0);
        assert!(!all.contains(&5));
    }
}
