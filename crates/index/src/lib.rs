//! # neutraj-index
//!
//! Spatial indexes that prune the trajectory search space before (exact or
//! learned) similarity ranking — the paper's *elastic* claim: "NEUTRAJ is
//! able to cooperate with existing indexing methods for reducing the
//! computing space" (§I), evaluated in Table V with two index structures:
//!
//! * [`RTree`] — a bounding-box R-tree over trajectory MBRs, bulk-loaded
//!   with the Sort-Tile-Recursive (STR) algorithm;
//! * [`GridInvertedIndex`] — a grid-cell → trajectory inverted index.
//!
//! A third, finer-grained structure serves the exact ground-truth engine
//! in `neutraj-measures` rather than Table V:
//!
//! * [`PointGrid`] — a per-trajectory point-bucket grid answering exact
//!   nearest-point queries by ring expansion (the inner `min` of the
//!   directed Hausdorff distance).
//!
//! A fourth operates on the *learned embedding* space rather than raw
//! trajectories — the serving-side ANN shortlist:
//!
//! * [`IvfIndex`] — an inverted-file index whose coarse quantizer (a
//!   [`CoarseQuantizer`], in practice the k-means of `neutraj-cluster`)
//!   buckets embedding rows into Voronoi cells; probing the `nprobe`
//!   nearest cells yields a sub-linear candidate shortlist for exact
//!   reranking.
//! * [`HnswIndex`] — a deterministic hierarchical navigable-small-world
//!   graph over embedding row ids behind the same shortlist seam:
//!   `ef`-bounded beam search yields a near-logarithmic candidate
//!   shortlist whose recall holds as `N` grows past where IVF's probe
//!   cost climbs.
//!
//! Both answer the same question: *which trajectories could possibly be
//! within distance `r` of this query?* The guarantee they provide is for
//! measures lower-bounded by MBR separation (Hausdorff and Fréchet are:
//! every point of one trajectory must be matched, so
//! `d(T_i, T_j) ≥ min_dist(mbr_i, mbr_j)`). The candidate set is then
//! ranked by brute force, an approximate algorithm, or NeuTraj embeddings.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hnsw;
mod inverted;
mod ivf;
mod pointgrid;
mod rtree;

pub use hnsw::{GraphScratch, GraphSearchStats, HnswCodecError, HnswIndex, HnswParams, HNSW_MAGIC};
pub use inverted::GridInvertedIndex;
pub use ivf::{CoarseQuantizer, IvfCodecError, IvfIndex, IVF_MAGIC};
pub use pointgrid::PointGrid;
pub use rtree::RTree;

use neutraj_trajectory::Trajectory;

/// A pruning index over a fixed corpus of trajectories.
pub trait SpatialIndex {
    /// Indices of trajectories whose pruning region lies within `radius`
    /// of `query`'s region — a superset of all trajectories with
    /// MBR-lower-bounded distance ≤ `radius`.
    fn candidates(&self, query: &Trajectory, radius: f64) -> Vec<usize>;

    /// Number of indexed trajectories.
    fn len(&self) -> usize;

    /// Returns `true` when nothing is indexed.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
