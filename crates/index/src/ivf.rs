//! IVF (inverted-file) index over embedding rows — the coarse half of the
//! sub-linear serving path.
//!
//! A fitted coarse quantizer partitions the embedding space into
//! `nlists` Voronoi cells; each cell owns an inverted list of the row ids
//! assigned to it. A query probes the `nprobe` cells whose centroids are
//! nearest, unions their lists into a candidate shortlist, and leaves
//! exact reranking (the norm-trick scan in `neutraj-model`) to the
//! caller. Because the lists partition the corpus, `nprobe = nlists`
//! degenerates to the exhaustive scan — the recall-1.0 anchor the
//! property tests pin down.
//!
//! The quantizer is a type parameter implementing [`CoarseQuantizer`]
//! rather than a concrete k-means type: `neutraj-measures` (and through
//! it `neutraj-cluster`) already depends on this crate for [`PointGrid`]
//! (the exact ground-truth engine), so the k-means implementation in
//! `neutraj-cluster` plugs in from above — `neutraj-model` instantiates
//! `IvfIndex<KMeans>` — keeping the crate graph acyclic.
//!
//! Everything is deterministic: probe order is ascending
//! `(distance², centroid index)` and each list keeps ids in insertion
//! (ascending) order, so candidate enumeration is reproducible across
//! runs and identical between a bulk-assigned index and one grown by
//! incremental [`IvfIndex::insert`] calls.
//!
//! [`PointGrid`]: crate::PointGrid

/// Magic prefix of the serialized section ([`IvfIndex::to_bytes`]).
pub const IVF_MAGIC: &[u8; 8] = b"NTIVF01\0";

/// A fitted coarse quantizer: a flat set of `k` centroids of dimension
/// `dim` that can assign rows to cells and order cells by distance.
/// Implemented by `neutraj_cluster::KMeans`; the contract every
/// implementation must honor for [`IvfIndex`] determinism:
///
/// * [`assign`](CoarseQuantizer::assign) breaks ties toward the lower
///   centroid index and agrees exactly with
///   [`assign_batch`](CoarseQuantizer::assign_batch);
/// * [`nearest`](CoarseQuantizer::nearest) orders ascending by
///   `(distance², centroid index)`;
/// * [`from_centroids`](CoarseQuantizer::from_centroids) rebuilds a
///   quantizer that assigns identically to the one
///   [`centroids`](CoarseQuantizer::centroids) was read from.
pub trait CoarseQuantizer {
    /// Centroid dimensionality.
    fn dim(&self) -> usize;

    /// Number of centroids (cells).
    fn k(&self) -> usize;

    /// The flat row-major `k × dim` centroid matrix.
    fn centroids(&self) -> &[f64];

    /// Index of the centroid nearest to `row`.
    fn assign(&self, row: &[f64]) -> usize;

    /// Assigns every row of `data` (row-major `n × dim`) to its nearest
    /// centroid, writing into `out` (cleared and resized to `n`). The
    /// default is the scalar loop; implementations override with a
    /// blocked GEMM pass that must agree bit-for-bit.
    fn assign_batch(&self, data: &[f64], out: &mut Vec<u32>) {
        assert_eq!(
            data.len() % self.dim(),
            0,
            "quantizer: data not a multiple of dim"
        );
        let dim = self.dim();
        out.clear();
        out.extend(data.chunks_exact(dim).map(|row| self.assign(row) as u32));
    }

    /// The `nprobe` centroids nearest to `row`, ascending by
    /// `(distance², index)` — the coarse probe order of an IVF query.
    fn nearest(&self, row: &[f64], nprobe: usize) -> Vec<usize>;

    /// Rebuilds a quantizer from a row-major `k × dim` centroid matrix
    /// (the persistence path).
    fn from_centroids(dim: usize, centroids: Vec<f64>) -> Self
    where
        Self: Sized;
}

/// Errors decoding a serialized IVF section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IvfCodecError(String);

impl core::fmt::Display for IvfCodecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "ivf decode: {}", self.0)
    }
}

impl std::error::Error for IvfCodecError {}

/// An inverted-file index: a coarse quantizer plus one id list per cell.
#[derive(Debug, Clone, PartialEq)]
pub struct IvfIndex<Q> {
    quantizer: Q,
    /// `lists[j]` holds the ids assigned to centroid `j`, ascending.
    lists: Vec<Vec<u32>>,
    /// Total ids across all lists; also the next id [`insert`] assigns.
    ///
    /// [`insert`]: IvfIndex::insert
    len: usize,
}

impl<Q: CoarseQuantizer> IvfIndex<Q> {
    /// Builds an index over `data` (row-major `n × dim`) with an
    /// already-fitted `quantizer`: one batched assignment pass, row `i`
    /// getting id `i`. Panics on ragged data.
    pub fn build(quantizer: Q, data: &[f64]) -> IvfIndex<Q> {
        let mut assign = Vec::new();
        quantizer.assign_batch(data, &mut assign);
        let mut lists = vec![Vec::new(); quantizer.k()];
        for (i, &c) in assign.iter().enumerate() {
            lists[c as usize].push(i as u32);
        }
        IvfIndex {
            quantizer,
            len: assign.len(),
            lists,
        }
    }

    /// Rebuilds an index from its parts (the persistence path). Panics
    /// when a list references a centroid that doesn't exist.
    pub fn from_parts(quantizer: Q, lists: Vec<Vec<u32>>) -> IvfIndex<Q> {
        assert_eq!(
            lists.len(),
            quantizer.k(),
            "ivf: list count != centroid count"
        );
        let len = lists.iter().map(Vec::len).sum();
        IvfIndex {
            quantizer,
            lists,
            len,
        }
    }

    /// The coarse quantizer.
    pub fn quantizer(&self) -> &Q {
        &self.quantizer
    }

    /// Number of inverted lists.
    pub fn nlists(&self) -> usize {
        self.lists.len()
    }

    /// Embedding dimensionality the index was built for.
    pub fn dim(&self) -> usize {
        self.quantizer.dim()
    }

    /// Total number of indexed rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when no rows are indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Ids in list `j`, ascending.
    pub fn list(&self, j: usize) -> &[u32] {
        &self.lists[j]
    }

    /// Assigns the next id (`self.len()`) to `emb`'s nearest cell and
    /// returns it — the incremental path behind `SimilarityDb::insert`.
    /// Scalar assignment agrees exactly with the batched [`build`] pass,
    /// so an index grown by inserts matches a bulk rebuild.
    ///
    /// [`build`]: IvfIndex::build
    pub fn insert(&mut self, emb: &[f64]) -> usize {
        let id = self.len;
        let cell = self.quantizer.assign(emb);
        self.lists[cell].push(id as u32);
        self.len += 1;
        id
    }

    /// Appends the ids of the `nprobe` cells nearest to `query` into
    /// `out` (cleared first), in probe order — ascending centroid
    /// distance, ids ascending within each list. Returns the number of
    /// lists probed (`min(nprobe, nlists)`).
    pub fn candidates_into(&self, query: &[f64], nprobe: usize, out: &mut Vec<u32>) -> usize {
        out.clear();
        let probe = self.quantizer.nearest(query, nprobe);
        for &cell in &probe {
            out.extend_from_slice(&self.lists[cell]);
        }
        probe.len()
    }

    /// Serializes the index: `NTIVF01\0` magic, header, centroid matrix,
    /// then each list — all little-endian. Integrity is the enclosing
    /// envelope's job (the `NTFILE01` CRC seal in `neutraj-model`).
    pub fn to_bytes(&self) -> Vec<u8> {
        let dim = self.dim();
        let ids: usize = self.lists.iter().map(Vec::len).sum();
        let cap = 8 + 3 * 8 + self.nlists() * dim * 8 + self.nlists() * 8 + ids * 4;
        let mut buf = Vec::with_capacity(cap);
        buf.extend_from_slice(IVF_MAGIC);
        buf.extend_from_slice(&(dim as u64).to_le_bytes());
        buf.extend_from_slice(&(self.nlists() as u64).to_le_bytes());
        buf.extend_from_slice(&(self.len as u64).to_le_bytes());
        for &v in self.quantizer.centroids() {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        for list in &self.lists {
            buf.extend_from_slice(&(list.len() as u64).to_le_bytes());
            for &id in list {
                buf.extend_from_slice(&id.to_le_bytes());
            }
        }
        buf
    }

    /// Decodes a [`to_bytes`] section, validating the magic, lengths,
    /// centroid finiteness, and that the lists partition `0..len`.
    ///
    /// [`to_bytes`]: IvfIndex::to_bytes
    pub fn from_bytes(data: &[u8]) -> Result<IvfIndex<Q>, IvfCodecError> {
        let mut cur = Cursor { data, pos: 0 };
        let magic = cur.take(8)?;
        if magic != IVF_MAGIC {
            return Err(IvfCodecError(format!("bad magic {magic:02x?}")));
        }
        let dim = cur.u64()? as usize;
        let nlists = cur.u64()? as usize;
        let len = cur.u64()? as usize;
        if dim == 0 || dim > 1 << 20 {
            return Err(IvfCodecError(format!("implausible dim {dim}")));
        }
        if nlists == 0 || nlists > 1 << 24 {
            return Err(IvfCodecError(format!("implausible nlists {nlists}")));
        }
        let mut centroids = Vec::with_capacity(nlists * dim);
        for _ in 0..nlists * dim {
            let v = f64::from_le_bytes(cur.take(8)?.try_into().unwrap());
            if !v.is_finite() {
                return Err(IvfCodecError(format!("non-finite centroid value {v}")));
            }
            centroids.push(v);
        }
        let mut lists = Vec::with_capacity(nlists);
        let mut total = 0usize;
        for j in 0..nlists {
            let count = cur.u64()? as usize;
            total += count;
            if total > len {
                return Err(IvfCodecError(format!(
                    "lists overflow len {len} at list {j}"
                )));
            }
            let mut list = Vec::with_capacity(count);
            let mut prev: Option<u32> = None;
            for _ in 0..count {
                let id = u32::from_le_bytes(cur.take(4)?.try_into().unwrap());
                if id as usize >= len {
                    return Err(IvfCodecError(format!("id {id} out of range (len {len})")));
                }
                if prev.is_some_and(|p| p >= id) {
                    return Err(IvfCodecError(format!("list {j} ids not ascending")));
                }
                prev = Some(id);
                list.push(id);
            }
            lists.push(list);
        }
        if total != len {
            return Err(IvfCodecError(format!(
                "lists hold {total} ids, header says {len}"
            )));
        }
        if cur.pos != data.len() {
            return Err(IvfCodecError(format!(
                "{} trailing bytes",
                data.len() - cur.pos
            )));
        }
        Ok(IvfIndex::from_parts(
            Q::from_centroids(dim, centroids),
            lists,
        ))
    }
}

/// Minimal bounds-checked little-endian reader (the index crate carries
/// no byte-buffer dependency).
struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], IvfCodecError> {
        if self.data.len() - self.pos < n {
            return Err(IvfCodecError(format!(
                "truncated: need {n} bytes at offset {}, have {}",
                self.pos,
                self.data.len() - self.pos
            )));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u64(&mut self) -> Result<u64, IvfCodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}
