//! IVF index behavior with the real k-means coarse quantizer.
//!
//! These live as integration tests (not a `#[cfg(test)]` module in
//! `ivf.rs`) because `neutraj-cluster` is a dev-dependency here: the
//! unit-test harness recompiles the crate, under which `CoarseQuantizer`
//! would be a distinct type from the one `KMeans` implements. Linking
//! against the published lib makes them unify.

use neutraj_cluster::{KMeans, KMeansParams};
use neutraj_index::{CoarseQuantizer, IvfIndex};

/// Deterministic clustered rows: `blobs` centers, `per` rows each.
fn blob_rows(blobs: usize, per: usize, dim: usize, seed: u64) -> Vec<f64> {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let centers: Vec<f64> = (0..blobs * dim).map(|_| (next() % 500) as f64).collect();
    let mut data = Vec::with_capacity(blobs * per * dim);
    for b in 0..blobs {
        for _ in 0..per {
            for d in 0..dim {
                data.push(centers[b * dim + d] + (next() % 100) as f64 / 100.0);
            }
        }
    }
    data
}

fn ivf_over(data: &[f64], dim: usize, nlists: usize) -> IvfIndex<KMeans> {
    let q = KMeans::fit(
        data,
        dim,
        &KMeansParams {
            k: nlists,
            ..Default::default()
        },
    );
    IvfIndex::build(q, data)
}

#[test]
fn lists_partition_the_corpus() {
    let dim = 4;
    let data = blob_rows(6, 30, dim, 42);
    let ivf = ivf_over(&data, dim, 6);
    assert_eq!(ivf.len(), 180);
    let mut all: Vec<u32> = (0..ivf.nlists())
        .flat_map(|j| ivf.list(j).to_vec())
        .collect();
    all.sort_unstable();
    assert_eq!(all, (0..180u32).collect::<Vec<_>>());
}

#[test]
fn probing_all_lists_yields_every_id() {
    let dim = 3;
    let data = blob_rows(4, 25, dim, 7);
    let ivf = ivf_over(&data, dim, 4);
    let mut out = Vec::new();
    let probed = ivf.candidates_into(&data[..dim], ivf.nlists(), &mut out);
    assert_eq!(probed, ivf.nlists());
    let mut sorted = out.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, (0..100u32).collect::<Vec<_>>());
    // nprobe beyond nlists clamps.
    let probed = ivf.candidates_into(&data[..dim], 999, &mut out);
    assert_eq!(probed, ivf.nlists());
}

#[test]
fn probe_order_is_nearest_first_and_finds_the_home_cell() {
    let dim = 2;
    let data = blob_rows(5, 40, dim, 13);
    let ivf = ivf_over(&data, dim, 5);
    // Probing one list for a stored row must surface that row.
    for i in [0usize, 57, 140, 199] {
        let q = &data[i * dim..(i + 1) * dim];
        let mut out = Vec::new();
        let probed = ivf.candidates_into(q, 1, &mut out);
        assert_eq!(probed, 1);
        assert!(out.contains(&(i as u32)), "row {i} missing from home cell");
    }
}

#[test]
fn incremental_insert_matches_bulk_rebuild() {
    let dim = 5;
    let data = blob_rows(4, 30, dim, 99);
    let n = data.len() / dim;
    let cut = n / 2;
    // Quantizer fitted on the first half; index grown over it by
    // inserting the rest one by one.
    let q = KMeans::fit(
        &data[..cut * dim],
        dim,
        &KMeansParams {
            k: 4,
            ..Default::default()
        },
    );
    let mut grown = IvfIndex::build(q.clone(), &data[..cut * dim]);
    for i in cut..n {
        let id = grown.insert(&data[i * dim..(i + 1) * dim]);
        assert_eq!(id, i);
    }
    // Same quantizer, bulk assignment over everything.
    let rebuilt = IvfIndex::build(q, &data);
    assert_eq!(grown, rebuilt);
}

#[test]
fn default_scalar_assign_batch_matches_kmeans_gemm_pass() {
    /// The trait's default `assign_batch` (scalar loop) against the
    /// KMeans GEMM override, through a forwarding wrapper.
    struct Scalar<'a>(&'a KMeans);
    impl CoarseQuantizer for Scalar<'_> {
        fn dim(&self) -> usize {
            self.0.dim()
        }
        fn k(&self) -> usize {
            self.0.k()
        }
        fn centroids(&self) -> &[f64] {
            self.0.centroids()
        }
        fn assign(&self, row: &[f64]) -> usize {
            self.0.assign(row)
        }
        fn nearest(&self, row: &[f64], nprobe: usize) -> Vec<usize> {
            self.0.nearest(row, nprobe)
        }
        fn from_centroids(_dim: usize, _c: Vec<f64>) -> Self {
            unreachable!("not constructed in this test")
        }
    }
    let dim = 6;
    let data = blob_rows(5, 33, dim, 3);
    let km = KMeans::fit(
        &data,
        dim,
        &KMeansParams {
            k: 5,
            ..Default::default()
        },
    );
    let mut via_gemm = Vec::new();
    km.assign_batch(&data, &mut via_gemm);
    let mut via_default = Vec::new();
    CoarseQuantizer::assign_batch(&Scalar(&km), &data, &mut via_default);
    assert_eq!(via_gemm, via_default);
}

#[test]
fn codec_roundtrips_exactly() {
    let dim = 3;
    let data = blob_rows(5, 20, dim, 5);
    let ivf = ivf_over(&data, dim, 5);
    let bytes = ivf.to_bytes();
    let back = IvfIndex::<KMeans>::from_bytes(&bytes).expect("decode");
    assert_eq!(ivf, back);
}

#[test]
fn codec_rejects_corruption() {
    let dim = 2;
    let data = blob_rows(3, 15, dim, 1);
    let ivf = ivf_over(&data, dim, 3);
    let good = ivf.to_bytes();
    let decode = IvfIndex::<KMeans>::from_bytes;

    // Bad magic.
    let mut bad = good.clone();
    bad[0] ^= 0xff;
    assert!(decode(&bad).is_err());

    // Truncation at every prefix short of the full section.
    for cut in [0, 7, 8, 20, good.len() / 2, good.len() - 1] {
        assert!(decode(&good[..cut]).is_err(), "cut {cut}");
    }

    // Trailing garbage.
    let mut long = good.clone();
    long.push(0);
    assert!(decode(&long).is_err());

    // An out-of-range id (last 4 bytes of some list entry).
    let mut bad = good.clone();
    let tail = bad.len() - 4;
    bad[tail..].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(decode(&bad).is_err());

    // Non-finite centroid.
    let mut bad = good;
    bad[8 + 24..8 + 32].copy_from_slice(&f64::NAN.to_le_bytes());
    assert!(decode(&bad).is_err());
}

#[test]
fn empty_corpus_insert_only_index_works() {
    // An index can be built from a fitted quantizer with no rows yet
    // (the rebuild-then-refill path).
    let q = KMeans::from_centroids(2, vec![0.0, 0.0, 100.0, 100.0]);
    let mut ivf = IvfIndex::from_parts(q, vec![Vec::new(), Vec::new()]);
    assert!(ivf.is_empty());
    assert_eq!(ivf.insert(&[1.0, 1.0]), 0);
    assert_eq!(ivf.insert(&[99.0, 99.0]), 1);
    assert_eq!(ivf.list(0), &[0]);
    assert_eq!(ivf.list(1), &[1]);
    let back = IvfIndex::<KMeans>::from_bytes(&ivf.to_bytes()).expect("decode");
    assert_eq!(ivf, back);
}
