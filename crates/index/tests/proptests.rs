//! Property-based tests of the spatial indexes: candidate soundness and
//! best-first kNN correctness on random corpora.

use neutraj_index::{GridInvertedIndex, RTree, SpatialIndex};
use neutraj_trajectory::{Grid, Point, Trajectory};
use proptest::prelude::*;

fn arb_corpus() -> impl Strategy<Value = Vec<Trajectory>> {
    prop::collection::vec(
        prop::collection::vec((-200.0f64..200.0, -200.0f64..200.0), 2..10),
        3..40,
    )
    .prop_map(|tss| {
        tss.into_iter()
            .enumerate()
            .map(|(i, pts)| {
                Trajectory::new_unchecked(i as u64, pts.into_iter().map(Point::from).collect())
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn rtree_range_query_equals_linear_filter(corpus in arb_corpus()) {
        let tree = RTree::build(&corpus);
        let query = corpus[0].mbr().inflated(25.0);
        let got = tree.range_query(&query);
        let expected: Vec<usize> = corpus
            .iter()
            .enumerate()
            .filter(|(_, t)| t.mbr().intersects(&query))
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn rtree_knn_distances_are_sorted_and_tight(corpus in arb_corpus(), k in 1usize..10) {
        let tree = RTree::build(&corpus);
        let q = corpus[0].mbr();
        let got = tree.knn_mbr(&q, k);
        prop_assert_eq!(got.len(), k.min(corpus.len()));
        for w in got.windows(2) {
            prop_assert!(w[0].1 <= w[1].1 + 1e-12, "knn distances unsorted");
        }
        // No non-returned item may be strictly closer than the worst
        // returned one.
        if let Some(&(_, worst)) = got.last() {
            for (i, t) in corpus.iter().enumerate() {
                if !got.iter().any(|(gi, _)| *gi == i) {
                    prop_assert!(
                        t.mbr().min_dist_box(&q) >= worst - 1e-12,
                        "missed closer item {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn both_indexes_are_sound_candidate_generators(
        corpus in arb_corpus(),
        radius in 0.0f64..100.0,
    ) {
        // "Sound" = no trajectory whose true nearest-point distance to the
        // query is within the radius may be pruned.
        let rtree = RTree::build(&corpus);
        let grid = Grid::covering(&corpus, 20.0).expect("non-empty");
        let inverted = GridInvertedIndex::build(grid, &corpus);
        let q = &corpus[0];
        let rc = rtree.candidates(q, radius);
        let ic = inverted.candidates(q, radius);
        for (i, t) in corpus.iter().enumerate() {
            let min_pair = t
                .points()
                .iter()
                .flat_map(|p| q.points().iter().map(move |r| p.dist(r)))
                .fold(f64::INFINITY, f64::min);
            if min_pair <= radius {
                prop_assert!(rc.contains(&i), "rtree pruned true candidate {i}");
                prop_assert!(ic.contains(&i), "inverted index pruned true candidate {i}");
            }
        }
        // Candidate lists are sorted and deduplicated.
        prop_assert!(rc.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(ic.windows(2).all(|w| w[0] < w[1]));
    }
}
