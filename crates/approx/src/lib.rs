//! # neutraj-approx
//!
//! The hand-crafted approximate algorithms the paper compares against as
//! **AP** (§VII-A.3): "state-of-the-art approximate algorithms from \[12\]
//! (Fréchet and DTW) and \[4\] (Hausdorff)". The originals are
//! closed-source; these reimplementations follow the same algorithmic
//! families (see `DESIGN.md` §3):
//!
//! * [`FrechetGridApprox`] — Driemel & Silvestri-style randomly-shifted
//!   grid snapping: curves are reduced to deduplicated cell-centre
//!   *signatures* and the discrete Fréchet distance is computed on the
//!   (much shorter) signatures, giving an `O(m²)`, `±O(δ)`-error
//!   approximation. [`CurveLsh`] exposes the companion multi-table LSH
//!   for candidate pruning.
//! * [`HausdorffLandmarkApprox`] — Farach-Colton & Indyk-style metric
//!   embedding: each trajectory maps to the vector of (clipped) distances
//!   from `K` fixed landmarks; the `L∞` difference of two such vectors
//!   lower-bounds and approximates the Hausdorff distance.
//! * [`DtwDownsampleApprox`] — the classic coarsening approximation of
//!   DTW (FastDTW / PAA family): resample both curves to `m` points,
//!   compute banded DTW, and rescale by the length ratio.
//!
//! ERP has no published approximate algorithm, matching the paper's "—"
//! entries ([`build_ap`] returns `None`).
//!
//! Like the originals, these are *fast but heuristic*: the paper's central
//! observation — AP beats brute force on speed but loses badly to learned
//! embeddings on accuracy — reproduces with these implementations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dtw_fast;
mod frechet_grid;
mod hausdorff_embed;
mod lsh;

pub use dtw_fast::DtwDownsampleApprox;
pub use frechet_grid::FrechetGridApprox;
pub use hausdorff_embed::HausdorffLandmarkApprox;
pub use lsh::CurveLsh;

use neutraj_measures::{top_k, MeasureKind, Neighbor};
use neutraj_trajectory::Trajectory;

/// An approximate-similarity algorithm with a per-trajectory signature
/// that is computed once and reused across queries.
pub trait ApproxAlgorithm: Send + Sync {
    /// The precomputed per-trajectory representation.
    type Sig: Send + Sync;

    /// Human-readable algorithm name.
    fn name(&self) -> &'static str;

    /// Computes the signature of a trajectory.
    fn signature(&self, t: &Trajectory) -> Self::Sig;

    /// Approximate distance between two signatures.
    fn dist(&self, a: &Self::Sig, b: &Self::Sig) -> f64;
}

/// A corpus preprocessed for approximate top-k search: all signatures
/// computed up front, queries cost `O(N · sig)` instead of `O(N · L²)`.
pub struct ApproxIndex<A: ApproxAlgorithm> {
    algo: A,
    sigs: Vec<A::Sig>,
}

impl<A: ApproxAlgorithm> ApproxIndex<A> {
    /// Preprocesses `corpus` under `algo`.
    pub fn build(algo: A, corpus: &[Trajectory]) -> Self {
        let sigs = corpus.iter().map(|t| algo.signature(t)).collect();
        Self { algo, sigs }
    }

    /// Number of indexed trajectories.
    pub fn len(&self) -> usize {
        self.sigs.len()
    }

    /// Returns `true` when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.sigs.is_empty()
    }

    /// The underlying algorithm.
    pub fn algorithm(&self) -> &A {
        &self.algo
    }

    /// Approximate distance between the query and indexed item `i`.
    pub fn dist_to(&self, query_sig: &A::Sig, i: usize) -> f64 {
        self.algo.dist(query_sig, &self.sigs[i])
    }

    /// Top-k most similar indexed items to `query` under the approximate
    /// distance.
    pub fn knn(&self, query: &Trajectory, k: usize) -> Vec<Neighbor> {
        let qs = self.algo.signature(query);
        let dists: Vec<f64> = self.sigs.iter().map(|s| self.algo.dist(&qs, s)).collect();
        top_k(&dists, k)
    }

    /// Top-k restricted to `candidates` (index-assisted search, Table V).
    pub fn knn_candidates(
        &self,
        query: &Trajectory,
        candidates: &[usize],
        k: usize,
    ) -> Vec<Neighbor> {
        let qs = self.algo.signature(query);
        let mut out: Vec<Neighbor> = candidates
            .iter()
            .map(|&i| Neighbor {
                index: i,
                dist: self.algo.dist(&qs, &self.sigs[i]),
            })
            .collect();
        out.sort_by(|a, b| {
            a.dist
                .partial_cmp(&b.dist)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.index.cmp(&b.index))
        });
        out.truncate(k);
        out
    }
}

/// Object-safe facade over [`ApproxIndex`] so experiment harnesses can
/// treat all AP baselines uniformly.
pub trait ApproxKnn: Send + Sync {
    /// Algorithm name.
    fn name(&self) -> &'static str;
    /// Top-k search (see [`ApproxIndex::knn`]).
    fn knn(&self, query: &Trajectory, k: usize) -> Vec<Neighbor>;
    /// Candidate-restricted top-k (see [`ApproxIndex::knn_candidates`]).
    fn knn_candidates(&self, query: &Trajectory, candidates: &[usize], k: usize) -> Vec<Neighbor>;
}

impl<A: ApproxAlgorithm> ApproxKnn for ApproxIndex<A> {
    fn name(&self) -> &'static str {
        self.algo.name()
    }

    fn knn(&self, query: &Trajectory, k: usize) -> Vec<Neighbor> {
        ApproxIndex::knn(self, query, k)
    }

    fn knn_candidates(&self, query: &Trajectory, candidates: &[usize], k: usize) -> Vec<Neighbor> {
        ApproxIndex::knn_candidates(self, query, candidates, k)
    }
}

/// Builds the paper's AP baseline for `kind` over `corpus`, or `None` for
/// ERP ("Except ERP which has no approximate algorithm", §VII-A.3).
///
/// `scale` should be the typical coordinate magnitude of the corpus (e.g.
/// the grid cell size or corpus extent / 100); it parameterizes grid
/// resolutions and landmark clipping.
///
/// Fréchet and DTW use the Driemel & Silvestri LSH (\[12\] in the paper,
/// which covers both measures): ranking is by *hash-collision count*
/// across tables, with MBR-centre distance as tie-break — fast and
/// characteristically crude, exactly the behaviour the paper reports for
/// AP. Hausdorff uses the landmark embedding of \[4\].
pub fn build_ap(
    kind: MeasureKind,
    corpus: &[Trajectory],
    scale: f64,
    seed: u64,
) -> Option<Box<dyn ApproxKnn>> {
    match kind {
        MeasureKind::Frechet | MeasureKind::Dtw => {
            Some(Box::new(LshKnn::build(corpus, scale, 8, seed)))
        }
        MeasureKind::Hausdorff => {
            let extent = corpus
                .iter()
                .fold(neutraj_trajectory::BoundingBox::EMPTY, |bb, t| {
                    bb.union(&t.mbr())
                });
            // A coarse landmark set with quantized entries: like the
            // published embedding, the speedup comes precisely from
            // projecting to few dimensions, which is also what caps its
            // accuracy.
            Some(Box::new(ApproxIndex::build(
                HausdorffLandmarkApprox::new(extent, 5, seed).with_quantization(scale),
                corpus,
            )))
        }
        MeasureKind::Erp => None,
    }
}

/// LSH-collision ranking baseline for Fréchet/DTW: score items by the
/// number of hash tables in which they collide with the query, break ties
/// by MBR-centre distance, and rank non-colliding items purely by MBR
/// distance (far behind every collider).
pub struct LshKnn {
    lsh: CurveLsh,
    centers: Vec<neutraj_trajectory::Point>,
}

impl LshKnn {
    /// Builds the LSH tables over `corpus` with resolution `delta` and
    /// `tables` hash tables.
    pub fn build(corpus: &[Trajectory], delta: f64, tables: usize, seed: u64) -> Self {
        let lsh = CurveLsh::build(corpus, delta, tables, seed);
        let centers = corpus
            .iter()
            .map(|t| {
                let bb = t.mbr();
                if bb.is_empty() {
                    neutraj_trajectory::Point::ORIGIN
                } else {
                    bb.center()
                }
            })
            .collect();
        Self { lsh, centers }
    }

    fn scores(&self, query: &Trajectory) -> Vec<f64> {
        let l = self.lsh.num_tables() as f64;
        let qc = {
            let bb = query.mbr();
            if bb.is_empty() {
                neutraj_trajectory::Point::ORIGIN
            } else {
                bb.center()
            }
        };
        // Base distance: MBR-centre separation, normalized small relative
        // to one collision step.
        let mut dists: Vec<f64> = self
            .centers
            .iter()
            .map(|c| l + c.dist(&qc) / (c.dist(&qc) + self.lsh.delta()))
            .collect();
        for (i, count) in self.lsh.candidates(query) {
            dists[i] -= count as f64;
        }
        dists
    }
}

impl ApproxKnn for LshKnn {
    fn name(&self) -> &'static str {
        "AP-LSH(curve)"
    }

    fn knn(&self, query: &Trajectory, k: usize) -> Vec<Neighbor> {
        top_k(&self.scores(query), k)
    }

    fn knn_candidates(&self, query: &Trajectory, candidates: &[usize], k: usize) -> Vec<Neighbor> {
        let scores = self.scores(query);
        let mut out: Vec<Neighbor> = candidates
            .iter()
            .map(|&i| Neighbor {
                index: i,
                dist: scores[i],
            })
            .collect();
        out.sort_by(|a, b| {
            a.dist
                .partial_cmp(&b.dist)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.index.cmp(&b.index))
        });
        out.truncate(k);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neutraj_trajectory::gen::PortoLikeGenerator;

    #[test]
    fn build_ap_covers_measures() {
        let corpus = PortoLikeGenerator {
            num_trajectories: 20,
            ..Default::default()
        }
        .generate(1);
        let ts = corpus.trajectories();
        for kind in MeasureKind::ALL {
            let ap = build_ap(kind, ts, 50.0, 7);
            match kind {
                MeasureKind::Erp => assert!(ap.is_none()),
                _ => {
                    let ap = ap.expect("AP exists");
                    let res = ap.knn(&ts[0], 5);
                    assert_eq!(res.len(), 5);
                    assert_eq!(res[0].index, 0, "{}: self not first", ap.name());
                }
            }
        }
    }

    #[test]
    fn candidate_restriction_respected() {
        let corpus = PortoLikeGenerator {
            num_trajectories: 15,
            ..Default::default()
        }
        .generate(2);
        let ts = corpus.trajectories();
        let ap = build_ap(MeasureKind::Frechet, ts, 50.0, 3).unwrap();
        let res = ap.knn_candidates(&ts[0], &[3, 7, 9], 2);
        assert_eq!(res.len(), 2);
        assert!(res.iter().all(|n| [3, 7, 9].contains(&n.index)));
    }
}
