//! Multi-table locality-sensitive hashing of curves.

use neutraj_trajectory::{Point, Trajectory};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// Locality-sensitive hashing of curves à la Driemel & Silvestri
/// (SoCG'17): each of `L` tables snaps curves to its own randomly-shifted
/// grid of resolution δ and hashes the deduplicated cell sequence. Curves
/// within Fréchet distance ≈ δ of each other collide with constant
/// probability per table; candidate quality grows with the number of
/// tables a pair co-occurs in.
///
/// This is a *candidate generator*: pair it with an exact or approximate
/// ranker. [`CurveLsh::candidates`] returns colliding corpus indices
/// sorted by descending collision count.
#[derive(Debug, Clone)]
pub struct CurveLsh {
    delta: f64,
    shifts: Vec<Point>,
    /// One bucket map per table: hash → corpus indices.
    tables: Vec<HashMap<u64, Vec<usize>>>,
    len: usize,
}

impl CurveLsh {
    /// Builds `num_tables` hash tables of resolution `delta` over
    /// `corpus`.
    pub fn build(corpus: &[Trajectory], delta: f64, num_tables: usize, seed: u64) -> Self {
        assert!(delta > 0.0 && delta.is_finite(), "delta must be positive");
        assert!(num_tables > 0, "need at least one table");
        let mut rng = StdRng::seed_from_u64(seed);
        let shifts: Vec<Point> = (0..num_tables)
            .map(|_| Point::new(rng.gen_range(0.0..delta), rng.gen_range(0.0..delta)))
            .collect();
        let mut tables = vec![HashMap::new(); num_tables];
        for (i, t) in corpus.iter().enumerate() {
            for (table, shift) in tables.iter_mut().zip(&shifts) {
                let h = hash_signature(t.points(), delta, *shift);
                table.entry(h).or_insert_with(Vec::new).push(i);
            }
        }
        Self {
            delta,
            shifts,
            tables,
            len: corpus.len(),
        }
    }

    /// Grid resolution δ.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Number of hash tables `L`.
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// Number of indexed curves.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Corpus indices colliding with `query` in at least one table,
    /// ordered by descending collision count (ties by index).
    pub fn candidates(&self, query: &Trajectory) -> Vec<(usize, usize)> {
        let mut counts: HashMap<usize, usize> = HashMap::new();
        for (table, shift) in self.tables.iter().zip(&self.shifts) {
            let h = hash_signature(query.points(), self.delta, *shift);
            if let Some(bucket) = table.get(&h) {
                for &i in bucket {
                    *counts.entry(i).or_insert(0) += 1;
                }
            }
        }
        let mut out: Vec<(usize, usize)> = counts.into_iter().collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }
}

/// Hashes the deduplicated snapped-cell sequence of a curve.
fn hash_signature(points: &[Point], delta: f64, shift: Point) -> u64 {
    let mut hasher = DefaultHasher::new();
    let mut last: Option<(i64, i64)> = None;
    for p in points {
        let cell = (
            ((p.x + shift.x) / delta).floor() as i64,
            ((p.y + shift.y) / delta).floor() as i64,
        );
        if last != Some(cell) {
            cell.hash(&mut hasher);
            last = Some(cell);
        }
    }
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_line(id: u64, y: f64, wiggle: f64) -> Trajectory {
        Trajectory::new_unchecked(
            id,
            (0..30)
                .map(|k| {
                    Point::new(
                        k as f64 * 4.0,
                        y + ((k * 2654435761u64.wrapping_mul(id + 1) as usize as u64 % 100) as f64
                            / 100.0
                            - 0.5)
                            * wiggle,
                    )
                })
                .collect(),
        )
    }

    #[test]
    fn identical_curves_always_collide() {
        let ts = vec![noisy_line(0, 0.0, 0.0), noisy_line(1, 0.0, 0.0)];
        let lsh = CurveLsh::build(&ts, 10.0, 8, 1);
        let c = lsh.candidates(&ts[0]);
        assert_eq!(c[0], (0, 8));
        assert!(c.contains(&(1, 8)), "duplicate curve missed");
    }

    #[test]
    fn near_curves_collide_more_than_far_curves() {
        let ts = vec![
            noisy_line(0, 0.0, 1.0),
            noisy_line(1, 1.0, 1.0),   // near the query
            noisy_line(2, 500.0, 1.0), // far
        ];
        let lsh = CurveLsh::build(&ts, 20.0, 16, 2);
        let c = lsh.candidates(&ts[0]);
        let near = c.iter().find(|(i, _)| *i == 1).map_or(0, |(_, n)| *n);
        let far = c.iter().find(|(i, _)| *i == 2).map_or(0, |(_, n)| *n);
        assert!(near > far, "near {near} <= far {far}");
        assert_eq!(far, 0, "far curve should never collide");
    }

    #[test]
    fn collision_rate_grows_with_delta() {
        let ts = vec![noisy_line(0, 0.0, 1.0), noisy_line(1, 6.0, 1.0)];
        let coarse = CurveLsh::build(&ts, 50.0, 16, 3);
        let fine = CurveLsh::build(&ts, 2.0, 16, 3);
        let count = |lsh: &CurveLsh| {
            lsh.candidates(&ts[0])
                .iter()
                .find(|(i, _)| *i == 1)
                .map_or(0, |(_, n)| *n)
        };
        assert!(count(&coarse) >= count(&fine));
    }

    #[test]
    fn deterministic() {
        let ts = vec![noisy_line(0, 0.0, 2.0), noisy_line(1, 3.0, 2.0)];
        let a = CurveLsh::build(&ts, 10.0, 4, 7);
        let b = CurveLsh::build(&ts, 10.0, 4, 7);
        assert_eq!(a.candidates(&ts[0]), b.candidates(&ts[0]));
    }

    #[test]
    #[should_panic(expected = "at least one table")]
    fn rejects_zero_tables() {
        let _ = CurveLsh::build(&[], 1.0, 0, 0);
    }
}
