//! Grid-signature approximation of the Fréchet distance.

use crate::ApproxAlgorithm;
use neutraj_measures::DiscreteFrechet;
use neutraj_trajectory::{Point, Trajectory};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Driemel & Silvestri-style curve simplification: snap every vertex of a
/// curve to a randomly-shifted grid of resolution `delta` and collapse
/// consecutive duplicates. The resulting *signature* is short (its length
/// is bounded by the curve's arc length / δ), and the discrete Fréchet
/// distance between two signatures differs from the true distance by at
/// most an additive `O(δ)` term (each vertex moves by ≤ δ·√2/2).
///
/// This is the "AP" baseline for the Fréchet distance: much faster than
/// the exact `O(L²)` computation (signatures are typically 5–20× shorter)
/// but visibly less accurate — exactly the trade-off the paper reports.
#[derive(Debug, Clone)]
pub struct FrechetGridApprox {
    delta: f64,
    shift: Point,
}

impl FrechetGridApprox {
    /// Creates the approximation with grid resolution `delta` (same unit
    /// as coordinates) and a random shift drawn from `seed`.
    pub fn new(delta: f64, seed: u64) -> Self {
        assert!(delta > 0.0 && delta.is_finite(), "delta must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        Self {
            delta,
            shift: Point::new(rng.gen_range(0.0..delta), rng.gen_range(0.0..delta)),
        }
    }

    /// The grid resolution δ.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Snaps a curve to the shifted grid, collapsing consecutive
    /// duplicate cells to their centre points.
    pub fn snap(&self, points: &[Point]) -> Vec<Point> {
        let mut out: Vec<Point> = Vec::new();
        let mut last: Option<(i64, i64)> = None;
        for p in points {
            let cx = ((p.x + self.shift.x) / self.delta).floor() as i64;
            let cy = ((p.y + self.shift.y) / self.delta).floor() as i64;
            if last != Some((cx, cy)) {
                last = Some((cx, cy));
                out.push(Point::new(
                    (cx as f64 + 0.5) * self.delta - self.shift.x,
                    (cy as f64 + 0.5) * self.delta - self.shift.y,
                ));
            }
        }
        out
    }
}

impl ApproxAlgorithm for FrechetGridApprox {
    type Sig = Vec<Point>;

    fn name(&self) -> &'static str {
        "AP-Frechet(grid-signature)"
    }

    fn signature(&self, t: &Trajectory) -> Vec<Point> {
        self.snap(t.points())
    }

    fn dist(&self, a: &Vec<Point>, b: &Vec<Point>) -> f64 {
        DiscreteFrechet::compute(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neutraj_measures::Measure;

    fn wavy(id: u64, n: usize, y0: f64) -> Trajectory {
        Trajectory::new_unchecked(
            id,
            (0..n)
                .map(|k| Point::new(k as f64 * 2.0, y0 + (k as f64 * 0.7).sin() * 3.0))
                .collect(),
        )
    }

    #[test]
    fn snapping_shortens_curves() {
        let ap = FrechetGridApprox::new(10.0, 1);
        let t = wavy(0, 200, 0.0);
        let sig = ap.signature(&t);
        assert!(
            sig.len() < t.len() / 2,
            "signature {} not shorter",
            sig.len()
        );
        assert!(!sig.is_empty());
    }

    #[test]
    fn approximation_error_is_bounded_by_delta() {
        let delta = 5.0;
        let ap = FrechetGridApprox::new(delta, 2);
        let a = wavy(0, 80, 0.0);
        let b = wavy(1, 80, 12.0);
        let exact = DiscreteFrechet.dist(a.points(), b.points());
        let approx = ap.dist(&ap.signature(&a), &ap.signature(&b));
        // Each snapped vertex moved ≤ δ·√2/2, so the Fréchet distance
        // between signatures is within √2·δ of the vertex-snapped truth.
        // Signature dedup can add at most another O(δ). Allow 2·√2·δ.
        let bound = 2.0 * std::f64::consts::SQRT_2 * delta;
        assert!(
            (exact - approx).abs() <= bound,
            "exact {exact} vs approx {approx}, bound {bound}"
        );
    }

    #[test]
    fn identical_curves_have_near_zero_distance() {
        let ap = FrechetGridApprox::new(5.0, 3);
        let t = wavy(0, 50, 0.0);
        assert_eq!(ap.dist(&ap.signature(&t), &ap.signature(&t)), 0.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = FrechetGridApprox::new(5.0, 9);
        let b = FrechetGridApprox::new(5.0, 9);
        let t = wavy(0, 30, 1.0);
        assert_eq!(a.signature(&t), b.signature(&t));
        let c = FrechetGridApprox::new(5.0, 10);
        // Different shifts usually change the signature.
        assert_ne!(a.signature(&t), c.signature(&t));
    }

    #[test]
    #[should_panic(expected = "delta must be positive")]
    fn rejects_bad_delta() {
        let _ = FrechetGridApprox::new(0.0, 0);
    }
}
