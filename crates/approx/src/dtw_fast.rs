//! Coarsened approximation of DTW.

use crate::ApproxAlgorithm;
use neutraj_measures::Dtw;
use neutraj_trajectory::{Point, Trajectory};

/// The classic coarsening approximation of DTW (the FastDTW / piecewise-
/// aggregate family): resample both curves to `m` points, run banded DTW
/// on the short curves, and rescale the summed cost by the original /
/// coarse length ratio so values stay comparable to exact DTW.
///
/// Cost per pair drops from `O(L²)` to `O(m²)` with `m` fixed (plus the
/// one-off `O(L)` resampling stored in the signature).
#[derive(Debug, Clone, Copy)]
pub struct DtwDownsampleApprox {
    m: usize,
}

/// Signature: the resampled curve plus the original length (for cost
/// rescaling).
#[derive(Debug, Clone, PartialEq)]
pub struct DtwSignature {
    /// Curve resampled to `m` points.
    pub coarse: Vec<Point>,
    /// Original number of points.
    pub orig_len: usize,
}

impl DtwDownsampleApprox {
    /// Creates the approximation with coarse length `m ≥ 2`.
    pub fn new(m: usize) -> Self {
        assert!(m >= 2, "coarse length must be at least 2");
        Self { m }
    }

    /// The coarse resolution `m`.
    pub fn m(&self) -> usize {
        self.m
    }
}

impl ApproxAlgorithm for DtwDownsampleApprox {
    type Sig = DtwSignature;

    fn name(&self) -> &'static str {
        "AP-DTW(downsample)"
    }

    fn signature(&self, t: &Trajectory) -> DtwSignature {
        let coarse = if t.len() <= self.m || t.len() < 2 {
            t.points().to_vec()
        } else {
            t.resample(self.m)
                .expect("len >= 2 checked above")
                .points()
                .to_vec()
        };
        DtwSignature {
            coarse,
            orig_len: t.len(),
        }
    }

    fn dist(&self, a: &DtwSignature, b: &DtwSignature) -> f64 {
        let coarse = Dtw::banded(&a.coarse, &b.coarse, self.m / 4 + 1);
        if coarse.is_infinite() {
            return coarse;
        }
        // DTW cost grows with the number of aligned pairs (≈ max length);
        // rescale so the estimate lives on the exact measure's scale.
        let scale = a.orig_len.max(b.orig_len) as f64 / a.coarse.len().max(b.coarse.len()) as f64;
        coarse * scale.max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neutraj_measures::Measure;

    fn wavy(id: u64, n: usize, y0: f64) -> Trajectory {
        Trajectory::new_unchecked(
            id,
            (0..n)
                .map(|k| Point::new(k as f64, y0 + (k as f64 * 0.4).cos() * 2.0))
                .collect(),
        )
    }

    #[test]
    fn signatures_are_short() {
        let ap = DtwDownsampleApprox::new(16);
        let sig = ap.signature(&wavy(0, 300, 0.0));
        assert_eq!(sig.coarse.len(), 16);
        assert_eq!(sig.orig_len, 300);
        // Short inputs pass through unresampled.
        let sig = ap.signature(&wavy(1, 8, 0.0));
        assert_eq!(sig.coarse.len(), 8);
    }

    #[test]
    fn identical_curves_score_zero() {
        let ap = DtwDownsampleApprox::new(16);
        let t = wavy(0, 100, 0.0);
        let s = ap.signature(&t);
        assert_eq!(ap.dist(&s, &s), 0.0);
    }

    #[test]
    fn estimate_tracks_exact_order_of_magnitude() {
        let ap = DtwDownsampleApprox::new(16);
        let a = wavy(0, 120, 0.0);
        let b = wavy(1, 120, 8.0);
        let exact = Dtw.dist(a.points(), b.points());
        let approx = ap.dist(&ap.signature(&a), &ap.signature(&b));
        // Same order of magnitude (the baseline is heuristic, not tight).
        assert!(
            approx > exact * 0.2 && approx < exact * 5.0,
            "approx {approx} vs exact {exact}"
        );
    }

    #[test]
    fn ranking_correlates_with_distance() {
        let ap = DtwDownsampleApprox::new(16);
        let q = ap.signature(&wavy(0, 100, 0.0));
        let near = ap.signature(&wavy(1, 90, 3.0));
        let far = ap.signature(&wavy(2, 110, 30.0));
        assert!(ap.dist(&q, &near) < ap.dist(&q, &far));
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn rejects_tiny_m() {
        let _ = DtwDownsampleApprox::new(1);
    }
}
