//! Landmark embedding approximation of the Hausdorff distance.

use crate::ApproxAlgorithm;
use neutraj_trajectory::{BoundingBox, Point, Trajectory};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Farach-Colton & Indyk-style constant-distortion embedding of point
/// sets: each trajectory maps to the vector of distances from `K` fixed
/// landmark points to its nearest trajectory point, clipped at `clip`.
///
/// The `L∞` difference of two such vectors **lower-bounds** the Hausdorff
/// distance (1-Lipschitz property of `min_dist` per landmark) and
/// approximates it increasingly well as landmarks densify. Query cost is
/// `O(K)` per pair after `O(K·L)` preprocessing per trajectory — the
/// "AP" baseline for Hausdorff.
#[derive(Debug, Clone)]
pub struct HausdorffLandmarkApprox {
    landmarks: Vec<Point>,
    clip: f64,
    quantization: f64,
}

impl HausdorffLandmarkApprox {
    /// Places `k` landmarks over `extent` (uniform random, deterministic
    /// per `seed`), clipping stored distances at the extent diagonal.
    pub fn new(extent: BoundingBox, k: usize, seed: u64) -> Self {
        assert!(k > 0, "need at least one landmark");
        assert!(!extent.is_empty(), "empty extent");
        let mut rng = StdRng::seed_from_u64(seed);
        let landmarks = (0..k)
            .map(|_| {
                Point::new(
                    rng.gen_range(extent.min_x..=extent.max_x),
                    rng.gen_range(extent.min_y..=extent.max_y),
                )
            })
            .collect();
        let clip = (extent.width().powi(2) + extent.height().powi(2)).sqrt();
        Self {
            landmarks,
            clip,
            quantization: 0.0,
        }
    }

    /// Quantizes signature entries to multiples of `q` (0 disables).
    ///
    /// The published embedding guarantees only *constant* distortion; a
    /// coarse quantization models that looseness and is what makes the
    /// baseline exhibit the paper's characteristic accuracy gap.
    pub fn with_quantization(mut self, q: f64) -> Self {
        assert!(q >= 0.0 && q.is_finite(), "quantization must be >= 0");
        self.quantization = q;
        self
    }

    /// Number of landmarks `K`.
    pub fn num_landmarks(&self) -> usize {
        self.landmarks.len()
    }
}

impl ApproxAlgorithm for HausdorffLandmarkApprox {
    type Sig = Vec<f64>;

    fn name(&self) -> &'static str {
        "AP-Hausdorff(landmark-embedding)"
    }

    fn signature(&self, t: &Trajectory) -> Vec<f64> {
        self.landmarks
            .iter()
            .map(|l| {
                let d = t
                    .points()
                    .iter()
                    .map(|p| l.dist(p))
                    .fold(f64::INFINITY, f64::min)
                    .min(self.clip);
                if self.quantization > 0.0 {
                    (d / self.quantization).floor() * self.quantization
                } else {
                    d
                }
            })
            .collect()
    }

    fn dist(&self, a: &Vec<f64>, b: &Vec<f64>) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neutraj_measures::{Hausdorff, Measure};

    fn hline(id: u64, y: f64) -> Trajectory {
        Trajectory::new_unchecked(id, (0..20).map(|k| Point::new(k as f64 * 5.0, y)).collect())
    }

    fn extent() -> BoundingBox {
        BoundingBox::new(-10.0, -10.0, 110.0, 110.0)
    }

    #[test]
    fn embedding_lower_bounds_hausdorff() {
        let ap = HausdorffLandmarkApprox::new(extent(), 64, 1);
        for (ya, yb) in [(0.0, 10.0), (5.0, 80.0), (50.0, 50.0)] {
            let a = hline(0, ya);
            let b = hline(1, yb);
            let exact = Hausdorff.dist(a.points(), b.points());
            let approx = ap.dist(&ap.signature(&a), &ap.signature(&b));
            assert!(
                approx <= exact + 1e-9,
                "lower bound violated: {approx} > {exact}"
            );
        }
    }

    #[test]
    fn approximation_is_informative_with_many_landmarks() {
        // With dense landmarks the estimate should recover a decent
        // fraction of the true distance for well-separated curves.
        let ap = HausdorffLandmarkApprox::new(extent(), 256, 2);
        let a = hline(0, 0.0);
        let b = hline(1, 60.0);
        let exact = Hausdorff.dist(a.points(), b.points());
        let approx = ap.dist(&ap.signature(&a), &ap.signature(&b));
        assert!(
            approx >= exact * 0.5,
            "estimate {approx} too weak vs exact {exact}"
        );
    }

    #[test]
    fn identical_sets_embed_identically() {
        let ap = HausdorffLandmarkApprox::new(extent(), 16, 3);
        let t = hline(0, 25.0);
        assert_eq!(ap.dist(&ap.signature(&t), &ap.signature(&t)), 0.0);
    }

    #[test]
    fn ranking_correlates_with_distance() {
        let ap = HausdorffLandmarkApprox::new(extent(), 128, 4);
        let q = hline(0, 0.0);
        let near = hline(1, 5.0);
        let far = hline(2, 90.0);
        let qs = ap.signature(&q);
        assert!(ap.dist(&qs, &ap.signature(&near)) < ap.dist(&qs, &ap.signature(&far)));
    }

    #[test]
    #[should_panic(expected = "at least one landmark")]
    fn rejects_zero_landmarks() {
        let _ = HausdorffLandmarkApprox::new(extent(), 0, 0);
    }

    #[test]
    fn quantization_coarsens_but_preserves_big_gaps() {
        let fine = HausdorffLandmarkApprox::new(extent(), 32, 5);
        let coarse = fine.clone().with_quantization(20.0);
        let a = hline(0, 0.0);
        let near = hline(1, 2.0);
        let far = hline(2, 80.0);
        // Fine embedding separates near pair; coarse one may collapse it.
        let fd = fine.dist(&fine.signature(&a), &fine.signature(&near));
        let cd = coarse.dist(&coarse.signature(&a), &coarse.signature(&near));
        assert!(cd <= fd + 20.0);
        // But a large geometric gap survives quantization.
        let cfar = coarse.dist(&coarse.signature(&a), &coarse.signature(&far));
        assert!(cfar > 20.0, "far distance collapsed to {cfar}");
    }
}
