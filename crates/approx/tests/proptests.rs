//! Property-based tests of the approximate baselines: error bounds,
//! lower-bound validity and LSH behaviour on random curves.

use neutraj_approx::{
    ApproxAlgorithm, CurveLsh, DtwDownsampleApprox, FrechetGridApprox, HausdorffLandmarkApprox,
};
use neutraj_measures::{DiscreteFrechet, Hausdorff, Measure};
use neutraj_trajectory::{BoundingBox, Point, Trajectory};
use proptest::prelude::*;

fn arb_traj(id: u64) -> impl Strategy<Value = Trajectory> {
    prop::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 2..25).prop_map(move |pts| {
        Trajectory::new_unchecked(id, pts.into_iter().map(Point::from).collect())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn frechet_grid_error_is_additively_bounded(
        a in arb_traj(0),
        b in arb_traj(1),
        delta in 1.0f64..30.0,
        seed in 0u64..100,
    ) {
        let ap = FrechetGridApprox::new(delta, seed);
        let exact = DiscreteFrechet.dist(a.points(), b.points());
        let approx = ap.dist(&ap.signature(&a), &ap.signature(&b));
        // Snapping moves each vertex ≤ δ√2/2; dedup can add another O(δ).
        let bound = 2.0 * std::f64::consts::SQRT_2 * delta;
        prop_assert!(
            (exact - approx).abs() <= bound + 1e-9,
            "error {} exceeds bound {bound}",
            (exact - approx).abs()
        );
    }

    #[test]
    fn hausdorff_embedding_is_a_lower_bound(
        a in arb_traj(0),
        b in arb_traj(1),
        k in 1usize..40,
        seed in 0u64..100,
    ) {
        let extent = BoundingBox::new(-120.0, -120.0, 120.0, 120.0);
        let ap = HausdorffLandmarkApprox::new(extent, k, seed);
        let exact = Hausdorff.dist(a.points(), b.points());
        let approx = ap.dist(&ap.signature(&a), &ap.signature(&b));
        prop_assert!(approx <= exact + 1e-9, "embedding {approx} > exact {exact}");
    }

    #[test]
    fn dtw_downsample_is_exact_for_short_inputs(a in arb_traj(0), b in arb_traj(1)) {
        // When both inputs already fit in the coarse budget, the estimate
        // equals banded DTW of the originals — in particular 0 for a == a.
        let ap = DtwDownsampleApprox::new(64);
        let sa = ap.signature(&a);
        prop_assert_eq!(ap.dist(&sa, &sa), 0.0);
        let sb = ap.signature(&b);
        let d = ap.dist(&sa, &sb);
        prop_assert!(d.is_finite());
        prop_assert!(d >= 0.0);
    }

    #[test]
    fn lsh_self_collision_is_total(t in arb_traj(0), delta in 1.0f64..40.0, seed in 0u64..50) {
        let corpus = vec![t.clone()];
        let lsh = CurveLsh::build(&corpus, delta, 6, seed);
        let c = lsh.candidates(&t);
        prop_assert_eq!(c.first().copied(), Some((0, 6)), "self must collide in all tables");
    }

    #[test]
    fn lsh_collision_count_bounded_by_tables(
        a in arb_traj(0),
        b in arb_traj(1),
        tables in 1usize..10,
    ) {
        let corpus = vec![a, b];
        let lsh = CurveLsh::build(&corpus, 15.0, tables, 3);
        for (_, count) in lsh.candidates(&corpus[0]) {
            prop_assert!(count <= tables);
            prop_assert!(count >= 1);
        }
    }

    #[test]
    fn signatures_are_deterministic(t in arb_traj(0), delta in 1.0f64..20.0, seed in 0u64..50) {
        let ap1 = FrechetGridApprox::new(delta, seed);
        let ap2 = FrechetGridApprox::new(delta, seed);
        prop_assert_eq!(ap1.signature(&t), ap2.signature(&t));
        let h1 = HausdorffLandmarkApprox::new(
            BoundingBox::new(-120.0, -120.0, 120.0, 120.0),
            8,
            seed,
        );
        let h2 = HausdorffLandmarkApprox::new(
            BoundingBox::new(-120.0, -120.0, 120.0, 120.0),
            8,
            seed,
        );
        prop_assert_eq!(h1.signature(&t), h2.signature(&t));
    }
}
