//! Serving chaos suite: injected scan panics, poisoned locks, deadline
//! storms, and overload bursts. The invariants (DESIGN.md §14):
//!
//! * the service never deadlocks and never panics a caller;
//! * every response is typed — `Ok` with honest `degraded`/`partial`
//!   markers, or a specific [`ServeError`];
//! * a non-degraded, non-partial answer is bit-identical to the
//!   sequential oracle over the same snapshot;
//! * shedding, deadline expiry, degradation, and quarantine are all
//!   observable through their `neutraj_serve_*` counters;
//! * dropping the service drains the queue — every accepted request is
//!   answered before the scheduler exits.

use neutraj_model::{BackboneKind, NeuTrajModel, TrainConfig};
use neutraj_obs::{names, Registry};
use neutraj_serve::{
    Priority, QuerySpec, ServeError, ServeRequest, ServiceConfig, SimilarityService,
};
use neutraj_trajectory::{BoundingBox, Grid, Point, Trajectory};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn model() -> NeuTrajModel {
    let grid = Grid::new(BoundingBox::new(0.0, 0.0, 1000.0, 500.0), 50.0).unwrap();
    let cfg = TrainConfig {
        backbone: BackboneKind::SamLstm,
        dim: 8,
        seed: 11,
        ..TrainConfig::neutraj()
    };
    NeuTrajModel::untrained(cfg, grid)
}

fn traj(id: u64, len: usize) -> Trajectory {
    Trajectory::new_unchecked(
        id,
        (0..len)
            .map(|k| {
                let t = k as f64;
                let i = id as f64;
                Point::new(
                    500.0 + 450.0 * (0.37 * t + 0.13 * i).sin(),
                    250.0 + 220.0 * (0.23 * t - 0.29 * i).cos(),
                )
            })
            .collect(),
    )
}

fn corpus(n: usize) -> Vec<Trajectory> {
    (0..n).map(|i| traj(i as u64, 3 + (i * 7) % 23)).collect()
}

/// Silences the *injected* panics (they are supposed to fire — their
/// backtraces would drown the test output) while forwarding every other
/// panic to the default hook, so a real failure still reports normally.
fn silence_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !msg.contains("injected shard") && !msg.contains("deliberate queue poison") {
                default(info);
            }
        }));
    });
}

fn counter(registry: &Registry, name: &str) -> u64 {
    registry.counter(name).get()
}

/// A panicking shard is isolated, quarantined, and — after its backoff —
/// re-admitted; the service answers throughout, first `partial`, then
/// (recovered) bit-identical to the full oracle.
#[test]
fn injected_shard_panic_quarantines_then_recovers() {
    silence_injected_panics();
    let registry = Registry::new();
    let cfg = ServiceConfig {
        nshards: 2,
        scan_threads: 2,
        max_batch: 4,
        batch_deadline: Duration::from_micros(200),
        quarantine_backoff: Duration::from_millis(30),
        ..ServiceConfig::default()
    };
    let service = SimilarityService::with_metrics(model(), corpus(30), &cfg, &registry).unwrap();
    let snapshot = service.snapshot();
    let query = traj(5000, 11);
    let spec = QuerySpec::new(5);
    let oracle = snapshot.search(&query, &spec).unwrap();

    let failing = Arc::new(AtomicBool::new(true));
    let hook = Arc::clone(&failing);
    service.set_scan_fault(Some(Arc::new(move |s| {
        s == 1 && hook.load(Ordering::SeqCst)
    })));

    // First faulted query: shard 1 panics inside the isolation boundary;
    // the answer covers shard 0 only and says so.
    let resp = service
        .query(ServeRequest::new(1, query.clone(), spec))
        .unwrap();
    assert!(resp.partial, "a lost shard must be reported as partial");
    assert!(
        resp.neighbors.iter().all(|n| n.index % 2 == 0),
        "a partial answer over shard 0 holds only even global indices: {:?}",
        resp.neighbors
    );
    assert_eq!(service.quarantined_shards(), vec![1]);
    assert!(counter(&registry, names::SERVE_SHARD_QUARANTINED_TOTAL) >= 1);

    // While quarantined, scans skip the shard (no more panics burned)
    // and answers stay partial + deterministic.
    let again = service
        .query(ServeRequest::new(2, query.clone(), spec))
        .unwrap();
    assert!(again.partial);
    assert_eq!(again.neighbors, resp.neighbors);

    // Heal the shard; after the backoff the trial scan succeeds and the
    // service returns to full, oracle-identical answers.
    failing.store(false, Ordering::SeqCst);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        std::thread::sleep(Duration::from_millis(10));
        let resp = service
            .query(ServeRequest::new(3, query.clone(), spec))
            .unwrap();
        if !resp.partial {
            assert_eq!(
                resp.neighbors, oracle,
                "a recovered (non-partial, non-degraded) answer must be \
                 bit-identical to the sequential oracle"
            );
            assert!(service.quarantined_shards().is_empty());
            break;
        }
        assert!(Instant::now() < deadline, "shard never left quarantine");
    }
}

/// Repeated panics keep the shard quarantined with growing backoff; the
/// service never deadlocks and never returns a wrong answer for the
/// healthy remainder.
#[test]
fn persistent_shard_failure_keeps_serving_the_healthy_shards() {
    silence_injected_panics();
    let cfg = ServiceConfig {
        nshards: 3,
        scan_threads: 3,
        batch_deadline: Duration::from_micros(200),
        quarantine_backoff: Duration::from_millis(1),
        ..ServiceConfig::default()
    };
    let service = SimilarityService::new(model(), corpus(30), &cfg).unwrap();
    service.set_scan_fault(Some(Arc::new(|s| s == 2)));
    let query = traj(6000, 9);
    for i in 0..20u64 {
        let resp = service
            .query(ServeRequest::new(i, query.clone(), QuerySpec::new(4)))
            .unwrap();
        assert!(resp.partial);
        assert!(
            resp.neighbors.iter().all(|n| n.index % 3 != 2),
            "quarantined shard 2 leaked global indices: {:?}",
            resp.neighbors
        );
    }
}

/// A shard panic under the *graph* backend follows the same isolation
/// contract as exact scans: the lost shard is quarantined, the answer is
/// `partial` over the healthy remainder, and recovery returns the
/// service to full graph-reference answers.
#[test]
fn injected_shard_panic_under_graph_queries_quarantines_then_recovers() {
    silence_injected_panics();
    let registry = Registry::new();
    let cfg = ServiceConfig {
        nshards: 2,
        scan_threads: 2,
        max_batch: 4,
        batch_deadline: Duration::from_micros(200),
        quarantine_backoff: Duration::from_millis(30),
        graph: Some(neutraj_model::HnswParams::default()),
        ..ServiceConfig::default()
    };
    let service = SimilarityService::with_metrics(model(), corpus(30), &cfg, &registry).unwrap();
    let snapshot = service.snapshot();
    let query = traj(5100, 11);
    let spec = QuerySpec::new(5).shortlist_graph(24);
    let oracle = snapshot.search(&query, &spec).unwrap();

    let failing = Arc::new(AtomicBool::new(true));
    let hook = Arc::clone(&failing);
    service.set_scan_fault(Some(Arc::new(move |s| {
        s == 1 && hook.load(Ordering::SeqCst)
    })));

    let resp = service
        .query(ServeRequest::new(1, query.clone(), spec))
        .unwrap();
    assert!(resp.partial, "a lost graph shard must be reported partial");
    assert!(
        !resp.degraded,
        "losing a shard is partial coverage, not a backend fallback"
    );
    assert!(
        resp.neighbors.iter().all(|n| n.index % 2 == 0),
        "a partial graph answer over shard 0 holds only even global \
         indices: {:?}",
        resp.neighbors
    );
    assert_eq!(service.quarantined_shards(), vec![1]);
    assert!(counter(&registry, names::SERVE_SHARD_QUARANTINED_TOTAL) >= 1);

    failing.store(false, Ordering::SeqCst);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        std::thread::sleep(Duration::from_millis(10));
        let resp = service
            .query(ServeRequest::new(3, query.clone(), spec))
            .unwrap();
        if !resp.partial {
            assert_eq!(
                resp.neighbors, oracle,
                "a recovered graph answer must equal the snapshot's own \
                 graph reference"
            );
            assert!(service.quarantined_shards().is_empty());
            break;
        }
        assert!(Instant::now() < deadline, "shard never left quarantine");
    }
}

/// A graph spec against a snapshot with no graph index is not an error:
/// the degrade ladder rewrites it onto the IVF shortlist (nprobe =
/// ⌈nlists/2⌉), tags the answer `degraded`, counts it, and the result
/// equals the rewritten spec's own reference.
#[test]
fn graph_spec_on_ann_only_snapshot_degrades_to_ivf() {
    let registry = Registry::new();
    let cfg = ServiceConfig {
        nshards: 2,
        scan_threads: 2,
        batch_deadline: Duration::from_micros(200),
        ann: Some(neutraj_model::AnnParams {
            nlists: 4,
            train_iters: 10,
            train_sample: 0,
            seed: 7,
        }),
        ..ServiceConfig::default()
    };
    let service = SimilarityService::with_metrics(model(), corpus(30), &cfg, &registry).unwrap();
    let snapshot = service.snapshot();
    let query = traj(5200, 10);
    let graph_spec = QuerySpec::new(5).shortlist_graph(24);
    // The ladder's published rewrite: IVF with half the lists probed.
    let ivf_reference = snapshot
        .search(&query, &QuerySpec::new(5).shortlist_ann(2))
        .unwrap();

    let resp = service
        .query(ServeRequest::new(1, query.clone(), graph_spec))
        .unwrap();
    assert!(
        resp.degraded,
        "a graph spec answered through IVF must be tagged degraded"
    );
    assert!(!resp.partial, "every shard answered — nothing was lost");
    assert_eq!(
        resp.neighbors, ivf_reference,
        "the fallback must answer exactly what its rewritten spec answers"
    );
    assert!(counter(&registry, names::SERVE_DEGRADED_TOTAL) >= 1);
}

/// A poisoned queue mutex (a thread panicked while holding it) does not
/// wedge the service: lock recovery keeps admission and dispatch alive.
#[test]
fn poisoned_queue_lock_recovers() {
    silence_injected_panics();
    let service = SimilarityService::new(
        model(),
        corpus(20),
        &ServiceConfig {
            batch_deadline: Duration::from_micros(200),
            ..ServiceConfig::default()
        },
    )
    .unwrap();
    let query = traj(7000, 8);
    let spec = QuerySpec::new(3);
    let before = service
        .query(ServeRequest::new(1, query.clone(), spec))
        .unwrap();
    service.poison_queue_for_test();
    let after = service
        .query(ServeRequest::new(2, query.clone(), spec))
        .unwrap();
    assert_eq!(before.neighbors, after.neighbors);
}

/// A storm of already-expired deadlines is answered typed — every
/// request gets `DeadlineExceeded`, counted, without burning scans — and
/// the service keeps answering fresh work afterwards.
#[test]
fn deadline_storm_answers_typed_without_burning_scans() {
    let registry = Registry::new();
    let cfg = ServiceConfig {
        max_batch: 8,
        batch_deadline: Duration::from_millis(5),
        ..ServiceConfig::default()
    };
    let service = SimilarityService::with_metrics(model(), corpus(20), &cfg, &registry).unwrap();
    let query = traj(8000, 10);
    let spec = QuerySpec::new(3);

    const STORM: u64 = 24;
    let receivers: Vec<_> = (0..STORM)
        .map(|i| {
            service.submit(ServeRequest::new(i, query.clone(), spec).with_deadline(Duration::ZERO))
        })
        .collect();
    for rx in receivers {
        match rx.recv().unwrap() {
            Err(ServeError::DeadlineExceeded) => {}
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }
    assert!(counter(&registry, names::SERVE_DEADLINE_EXPIRED_TOTAL) >= STORM);

    // An un-deadlined request still gets a full answer.
    let resp = service
        .query(ServeRequest::new(999, query.clone(), spec))
        .unwrap();
    assert!(!resp.partial && !resp.degraded);
    assert_eq!(
        resp.neighbors,
        service.snapshot().search(&query, &spec).unwrap()
    );

    // A generous deadline is not a death sentence: it completes Ok.
    let resp = service
        .query(ServeRequest::new(1000, query.clone(), spec).with_deadline(Duration::from_secs(30)))
        .unwrap();
    assert_eq!(
        resp.neighbors,
        service.snapshot().search(&query, &spec).unwrap()
    );
}

/// Overload burst against a tiny bounded queue: overflow is answered
/// `Overloaded` with a nonzero retry hint, the accepted remainder is
/// answered oracle-identical, and every shed counts.
#[test]
fn overload_burst_sheds_typed_and_answers_the_rest() {
    let registry = Registry::new();
    let cfg = ServiceConfig {
        max_queue: 4,
        max_batch: 64,
        batch_deadline: Duration::from_millis(50),
        ..ServiceConfig::default()
    };
    let service = SimilarityService::with_metrics(model(), corpus(25), &cfg, &registry).unwrap();
    let snapshot = service.snapshot();
    let query = traj(9000, 12);
    let spec = QuerySpec::new(5);
    let oracle = snapshot.search(&query, &spec).unwrap();

    const BURST: u64 = 50;
    let receivers: Vec<_> = (0..BURST)
        .map(|i| service.submit(ServeRequest::new(i, query.clone(), spec)))
        .collect();
    let mut accepted = 0u64;
    let mut shed = 0u64;
    for rx in receivers {
        match rx.recv().unwrap() {
            Ok(resp) => {
                accepted += 1;
                if !resp.degraded && !resp.partial {
                    assert_eq!(resp.neighbors, oracle, "accepted answer diverged");
                }
            }
            Err(ServeError::Overloaded { retry_after_hint }) => {
                shed += 1;
                assert!(
                    retry_after_hint > Duration::ZERO,
                    "the retry hint must be a usable backoff"
                );
            }
            Err(other) => panic!("unexpected error under overload: {other:?}"),
        }
    }
    assert_eq!(accepted + shed, BURST);
    assert!(
        shed >= BURST - 8,
        "a 4-deep queue under a {BURST}-request burst must shed most of it \
         (accepted {accepted}, shed {shed})"
    );
    assert!(accepted >= 4, "the queue's capacity must still be served");
    assert_eq!(counter(&registry, names::SERVE_SHED_TOTAL), shed);
}

/// Bounded admission is priority-aware: when the queue is full, a
/// high-priority arrival evicts the newest queued normal request rather
/// than being turned away.
#[test]
fn high_priority_arrival_evicts_newest_normal_when_full() {
    let cfg = ServiceConfig {
        max_queue: 2,
        max_batch: 8,
        batch_deadline: Duration::from_millis(100),
        ..ServiceConfig::default()
    };
    let service = SimilarityService::new(model(), corpus(20), &cfg).unwrap();
    let query = traj(9100, 9);
    let spec = QuerySpec::new(3);

    let normal_1 = service.submit(ServeRequest::new(1, query.clone(), spec));
    let normal_2 = service.submit(ServeRequest::new(2, query.clone(), spec));
    let high =
        service.submit(ServeRequest::new(3, query.clone(), spec).with_priority(Priority::High));

    // The newest normal request was evicted to make room…
    match normal_2.recv().unwrap() {
        Err(ServeError::Overloaded { .. }) => {}
        other => panic!("expected the newest normal request to be shed, got {other:?}"),
    }
    // …while the older normal and the high-priority request both answer.
    assert!(normal_1.recv().unwrap().is_ok());
    assert!(high.recv().unwrap().is_ok());
}

/// Under queue pressure, exact scans degrade to the quantized view:
/// tagged, counted, and still answering exactly what the quantized
/// reference answers — never silently wrong.
#[test]
fn pressure_degrades_exact_scans_to_the_quantized_view() {
    let registry = Registry::new();
    let cfg = ServiceConfig {
        quantized: true,
        max_batch: 64,
        max_queue: 256,
        // Any queued request counts as pressure — every dispatch in this
        // test runs degraded, deterministically.
        degrade_watermark: 1,
        batch_deadline: Duration::from_millis(5),
        ..ServiceConfig::default()
    };
    let service = SimilarityService::with_metrics(model(), corpus(30), &cfg, &registry).unwrap();
    let snapshot = service.snapshot();
    let query = traj(9200, 10);
    let spec = QuerySpec::new(5);
    let quant_oracle = snapshot.search(&query, &spec.quantized()).unwrap();
    let exact_oracle = snapshot.search(&query, &spec).unwrap();

    let receivers: Vec<_> = (0..12u64)
        .map(|i| service.submit(ServeRequest::new(i, query.clone(), spec)))
        .collect();
    for rx in receivers {
        let resp = rx.recv().unwrap().unwrap();
        assert!(resp.degraded, "dispatch under watermark-1 must degrade");
        assert_eq!(
            resp.neighbors, quant_oracle,
            "a degraded answer must equal the quantized-spec reference"
        );
    }
    assert!(counter(&registry, names::SERVE_DEGRADED_TOTAL) >= 12);

    // Sanity: the quantized view's exact-rerank contract means the
    // degraded answer is itself usually the exact answer — but the tag,
    // not the luck, is the contract.
    let _ = exact_oracle;

    // An already-quantized spec has nothing to degrade to and is never
    // tagged.
    let resp = service
        .query(ServeRequest::new(99, query.clone(), spec.quantized()))
        .unwrap();
    assert!(!resp.degraded);
}

/// Sustained high-priority load cannot starve the normal lane: overdue
/// normal requests are promoted into dispatch, so they all complete
/// while the flood is still running.
#[test]
fn normal_lane_is_not_starved_by_sustained_high_priority_load() {
    let cfg = ServiceConfig {
        max_batch: 2,
        max_queue: 8,
        batch_deadline: Duration::from_millis(1),
        ..ServiceConfig::default()
    };
    let service = SimilarityService::new(model(), corpus(20), &cfg).unwrap();
    let query = traj(9300, 8);
    let spec = QuerySpec::new(3);
    let normals_done = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        let flood_flag = Arc::clone(&normals_done);
        let flood_service = &service;
        let flood_query = query.clone();
        let flood = scope.spawn(move || {
            let mut receivers = Vec::new();
            let mut i = 10_000u64;
            let cap = Instant::now() + Duration::from_secs(30);
            while !flood_flag.load(Ordering::SeqCst) && Instant::now() < cap {
                receivers.push(flood_service.submit(
                    ServeRequest::new(i, flood_query.clone(), spec).with_priority(Priority::High),
                ));
                i += 1;
                // Keep the high lane non-empty without unbounded memory.
                if receivers.len() >= 64 {
                    for rx in receivers.drain(..) {
                        let _ = rx.recv();
                    }
                }
            }
            for rx in receivers {
                let _ = rx.recv();
            }
        });

        // Give the flood a head start, then ask for normal service. A
        // normal arriving at a full queue of highs is legitimately shed
        // (bounded admission outranks fairness), so retry until one is
        // *admitted* — the starvation contract is that an admitted
        // normal must then complete despite the sustained high load.
        std::thread::sleep(Duration::from_millis(20));
        for i in 0..5u64 {
            let admission_cap = Instant::now() + Duration::from_secs(15);
            let answer = loop {
                let rx = service.submit(ServeRequest::new(i, query.clone(), spec));
                let answer = rx
                    .recv_timeout(Duration::from_secs(20))
                    .expect("normal request starved under high-priority flood");
                match answer {
                    Err(ServeError::Overloaded { .. }) if Instant::now() < admission_cap => {
                        std::thread::sleep(Duration::from_micros(200));
                    }
                    other => break other,
                }
            };
            assert!(answer.is_ok(), "normal request failed: {answer:?}");
        }
        normals_done.store(true, Ordering::SeqCst);
        flood.join().unwrap();
    });
}

/// Dropping the service drains the queue: every request accepted before
/// shutdown is answered (correctly), none is left hanging.
#[test]
fn shutdown_drains_accepted_requests() {
    let cfg = ServiceConfig {
        max_batch: 64,
        batch_deadline: Duration::from_millis(200),
        ..ServiceConfig::default()
    };
    let service = SimilarityService::new(model(), corpus(20), &cfg).unwrap();
    let snapshot = service.snapshot();
    let query = traj(9400, 10);
    let spec = QuerySpec::new(4);
    let oracle = snapshot.search(&query, &spec).unwrap();

    let receivers: Vec<_> = (0..10u64)
        .map(|i| service.submit(ServeRequest::new(i, query.clone(), spec)))
        .collect();
    // Long batch_deadline: the queue is still coalescing when we drop.
    drop(service);
    for rx in receivers {
        let resp = rx.recv().expect("request dropped unanswered at shutdown");
        assert_eq!(resp.unwrap().neighbors, oracle);
    }
}

/// Invalid configurations are rejected at construction, typed and
/// counted — not discovered by a wedged scheduler later.
#[test]
fn invalid_service_configs_are_rejected_at_construction() {
    let registry = Registry::new();
    let bad_configs = [
        ServiceConfig {
            max_batch: 0,
            ..ServiceConfig::default()
        },
        ServiceConfig {
            batch_deadline: Duration::ZERO,
            ..ServiceConfig::default()
        },
        ServiceConfig {
            max_queue: 0,
            ..ServiceConfig::default()
        },
    ];
    for (i, cfg) in bad_configs.iter().enumerate() {
        let err = SimilarityService::with_metrics(model(), corpus(8), cfg, &registry)
            .err()
            .unwrap_or_else(|| panic!("bad config {i} was accepted"));
        assert!(
            matches!(
                err,
                ServeError::Db(neutraj_model::DbError::InvalidConfig(_))
            ),
            "bad config {i}: wrong error {err:?}"
        );
    }
    assert_eq!(
        registry.counter(names::DB_REJECTS_TOTAL).get(),
        bad_configs.len() as u64,
        "every construction rejection must count"
    );
}
