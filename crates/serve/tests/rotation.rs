//! Snapshot-rotation suite: readers querying concurrently with a writer
//! never see a torn corpus — every answer equals the reference result of
//! exactly one published epoch, old snapshots keep serving until the
//! swap, and the final epoch serves the final corpus.

use neutraj_model::{BackboneKind, NeuTrajModel, TrainConfig};
use neutraj_serve::{QuerySpec, ServeRequest, ServiceConfig, SimilarityService, Snapshot};
use neutraj_trajectory::{BoundingBox, Grid, Point, Trajectory};
use std::time::Duration;

fn model() -> NeuTrajModel {
    let grid = Grid::new(BoundingBox::new(0.0, 0.0, 1000.0, 500.0), 50.0).unwrap();
    let cfg = TrainConfig {
        backbone: BackboneKind::SamLstm,
        dim: 8,
        seed: 9,
        ..TrainConfig::neutraj()
    };
    NeuTrajModel::untrained(cfg, grid)
}

fn traj(id: u64, len: usize) -> Trajectory {
    Trajectory::new_unchecked(
        id,
        (0..len)
            .map(|k| {
                let t = k as f64;
                let i = id as f64;
                Point::new(
                    500.0 + 450.0 * (0.41 * t + 0.11 * i).sin(),
                    250.0 + 220.0 * (0.19 * t - 0.31 * i).cos(),
                )
            })
            .collect(),
    )
}

/// Readers race a writer that publishes `M` single-insert epochs. Every
/// response must match the reference answer of the epoch it reports —
/// i.e. one of the `M + 1` corpus prefixes, never a mix of two.
#[test]
fn concurrent_reads_see_whole_epochs_only() {
    const INITIAL: usize = 30;
    const INSERTS: usize = 10;
    const NSHARDS: usize = 2;

    let m = model();
    let initial: Vec<Trajectory> = (0..INITIAL)
        .map(|i| traj(i as u64, 3 + (i * 7) % 23))
        .collect();
    let inserts: Vec<Trajectory> = (0..INSERTS)
        .map(|i| traj((INITIAL + i) as u64, 4 + (i * 5) % 21))
        .collect();
    let query = traj(5000, 11);
    let spec = QuerySpec::new(5);

    // Reference chain: epoch e's corpus is initial + inserts[..e], built
    // through the same copy-on-write `inserted` path the service uses.
    let cfg = ServiceConfig {
        nshards: NSHARDS,
        max_batch: 4,
        batch_deadline: Duration::from_micros(200),
        ..ServiceConfig::default()
    };
    let shard_cfg = neutraj_serve::ShardConfig::new(NSHARDS);
    let mut chain = vec![Snapshot::build(&m, initial.clone(), &shard_cfg).unwrap()];
    for t in &inserts {
        chain.push(
            chain
                .last()
                .unwrap()
                .inserted(std::slice::from_ref(t))
                .unwrap(),
        );
    }
    let expected: Vec<_> = chain
        .iter()
        .map(|snap| snap.search(&query, &spec).unwrap())
        .collect();

    let service = SimilarityService::new(m, initial, &cfg).unwrap();
    assert_eq!(service.epoch(), 0);
    assert_eq!(service.len(), INITIAL);

    std::thread::scope(|scope| {
        let writer = scope.spawn(|| {
            for t in &inserts {
                let global = service.insert(t.clone()).unwrap();
                // Global indices are handed out densely in insert order.
                assert!((INITIAL..INITIAL + INSERTS).contains(&global));
            }
        });
        let readers: Vec<_> = (0..3)
            .map(|r| {
                let service = &service;
                let query = &query;
                let expected = &expected;
                scope.spawn(move || {
                    let mut seen_epochs = Vec::new();
                    for i in 0..20u64 {
                        let resp = service
                            .query(ServeRequest::new(r * 100 + i, query.clone(), spec))
                            .unwrap();
                        let epoch = resp.epoch as usize;
                        assert!(
                            epoch <= INSERTS,
                            "epoch {epoch} was never published (reader {r})"
                        );
                        assert_eq!(
                            resp.neighbors, expected[epoch],
                            "reader {r} iteration {i}: answer does not match the \
                             corpus of its reported epoch {epoch} — torn read"
                        );
                        seen_epochs.push(resp.epoch);
                    }
                    seen_epochs
                })
            })
            .collect();
        writer.join().unwrap();
        for reader in readers {
            let epochs = reader.join().unwrap();
            // Snapshots are published in order, so each reader observes a
            // non-decreasing epoch sequence.
            assert!(
                epochs.windows(2).all(|w| w[0] <= w[1]),
                "epochs went backwards: {epochs:?}"
            );
        }
    });

    // The final published snapshot serves the full corpus.
    assert_eq!(service.epoch(), INSERTS as u64);
    assert_eq!(service.len(), INITIAL + INSERTS);
    let last = service
        .query(ServeRequest::new(9999, query.clone(), spec))
        .unwrap();
    assert_eq!(last.epoch, INSERTS as u64);
    assert_eq!(last.neighbors, expected[INSERTS]);

    // An old snapshot handle taken before teardown keeps answering with
    // its own epoch's corpus — publication never mutates in place.
    let old = chain.first().unwrap();
    assert_eq!(old.search(&query, &spec).unwrap(), expected[0]);
    assert_eq!(old.len(), INITIAL);
}

/// Rotation racing shedding: writers publish epochs while reader bursts
/// overflow a small bounded queue. Every *accepted* answer must still
/// match the reference result of exactly one published epoch (no torn
/// reads under admission pressure), per-reader epoch sequences stay
/// non-decreasing, and every rejection is the typed `Overloaded` — the
/// overload ladder may drop work, never corrupt it.
#[test]
fn rotation_races_overload_shedding_without_tearing() {
    use neutraj_serve::ServeError;

    const INITIAL: usize = 24;
    const INSERTS: usize = 8;
    const NSHARDS: usize = 2;

    let m = model();
    let initial: Vec<Trajectory> = (0..INITIAL)
        .map(|i| traj(i as u64, 3 + (i * 7) % 23))
        .collect();
    let inserts: Vec<Trajectory> = (0..INSERTS)
        .map(|i| traj((INITIAL + i) as u64, 4 + (i * 5) % 21))
        .collect();
    let query = traj(5000, 11);
    let spec = QuerySpec::new(5);

    let shard_cfg = neutraj_serve::ShardConfig::new(NSHARDS);
    let mut chain = vec![Snapshot::build(&m, initial.clone(), &shard_cfg).unwrap()];
    for t in &inserts {
        chain.push(
            chain
                .last()
                .unwrap()
                .inserted(std::slice::from_ref(t))
                .unwrap(),
        );
    }
    let expected: Vec<_> = chain
        .iter()
        .map(|snap| snap.search(&query, &spec).unwrap())
        .collect();

    let cfg = ServiceConfig {
        nshards: NSHARDS,
        max_batch: 4,
        batch_deadline: Duration::from_micros(300),
        // Small enough that reader bursts overflow it routinely.
        max_queue: 6,
        ..ServiceConfig::default()
    };
    let service = SimilarityService::new(m, initial, &cfg).unwrap();

    std::thread::scope(|scope| {
        let writer = scope.spawn(|| {
            for t in &inserts {
                service.insert(t.clone()).unwrap();
                std::thread::sleep(Duration::from_micros(500));
            }
        });
        let readers: Vec<_> = (0..3)
            .map(|r| {
                let service = &service;
                let query = &query;
                let expected = &expected;
                scope.spawn(move || {
                    let mut last_epoch = 0u64;
                    let (mut accepted, mut shed) = (0u64, 0u64);
                    for burst in 0..30u64 {
                        // Fire a burst without draining, so admissions
                        // race the writer's publications *and* the
                        // bounded queue.
                        let rxs: Vec<_> = (0..4u64)
                            .map(|i| {
                                service.submit(ServeRequest::new(
                                    r * 1000 + burst * 10 + i,
                                    query.clone(),
                                    spec,
                                ))
                            })
                            .collect();
                        for rx in rxs {
                            match rx.recv().unwrap() {
                                Ok(resp) => {
                                    accepted += 1;
                                    let epoch = resp.epoch as usize;
                                    assert!(epoch <= INSERTS, "unpublished epoch {epoch}");
                                    assert!(!resp.degraded && !resp.partial);
                                    assert_eq!(
                                        resp.neighbors, expected[epoch],
                                        "reader {r}: answer does not match its \
                                         reported epoch {epoch} — torn under shedding"
                                    );
                                    assert!(
                                        resp.epoch >= last_epoch,
                                        "reader {r}: epoch went backwards \
                                         ({} after {last_epoch})",
                                        resp.epoch
                                    );
                                    last_epoch = resp.epoch;
                                }
                                Err(ServeError::Overloaded { retry_after_hint }) => {
                                    shed += 1;
                                    assert!(retry_after_hint > Duration::ZERO);
                                }
                                Err(other) => panic!("untyped failure: {other:?}"),
                            }
                        }
                    }
                    (accepted, shed)
                })
            })
            .collect();
        writer.join().unwrap();
        let mut total_accepted = 0;
        for reader in readers {
            let (accepted, _) = reader.join().unwrap();
            total_accepted += accepted;
        }
        assert!(
            total_accepted > 0,
            "overload pressure must not starve the service entirely"
        );
    });

    // The writer's epochs all landed despite the shedding storm.
    assert_eq!(service.epoch(), INSERTS as u64);
    assert_eq!(service.len(), INITIAL + INSERTS);
    let last = service
        .query(ServeRequest::new(9999, query.clone(), spec))
        .unwrap();
    assert_eq!(last.neighbors, expected[INSERTS]);
}

/// Rotation racing the graph backend: a writer publishes single-insert
/// epochs while readers issue graph-shortlist queries. Every answer must
/// match the reference result of its reported epoch's corpus under the
/// *same* deterministic HNSW construction — inserts keep the per-shard
/// graphs live, so no response is degraded and no epoch is torn.
#[test]
fn graph_queries_race_rotation_without_tearing() {
    use neutraj_model::HnswParams;

    const INITIAL: usize = 30;
    const INSERTS: usize = 10;
    const NSHARDS: usize = 2;

    let m = model();
    let initial: Vec<Trajectory> = (0..INITIAL)
        .map(|i| traj(i as u64, 3 + (i * 7) % 23))
        .collect();
    let inserts: Vec<Trajectory> = (0..INSERTS)
        .map(|i| traj((INITIAL + i) as u64, 4 + (i * 5) % 21))
        .collect();
    let query = traj(5000, 11);
    let params = HnswParams::default();
    let spec = QuerySpec::new(5).shortlist_graph(24);

    // Reference chain with the same graph params: epoch e answers over
    // initial + inserts[..e] through live graph maintenance, exactly
    // like the service's copy-on-write insert path.
    let shard_cfg = neutraj_serve::ShardConfig {
        graph: Some(params),
        ..neutraj_serve::ShardConfig::new(NSHARDS)
    };
    let mut chain = vec![Snapshot::build(&m, initial.clone(), &shard_cfg).unwrap()];
    for t in &inserts {
        chain.push(
            chain
                .last()
                .unwrap()
                .inserted(std::slice::from_ref(t))
                .unwrap(),
        );
    }
    let expected: Vec<_> = chain
        .iter()
        .map(|snap| snap.search(&query, &spec).unwrap())
        .collect();

    let cfg = ServiceConfig {
        nshards: NSHARDS,
        max_batch: 4,
        batch_deadline: Duration::from_micros(200),
        graph: Some(params),
        ..ServiceConfig::default()
    };
    let service = SimilarityService::new(m, initial, &cfg).unwrap();

    std::thread::scope(|scope| {
        let writer = scope.spawn(|| {
            for t in &inserts {
                service.insert(t.clone()).unwrap();
            }
        });
        let readers: Vec<_> = (0..3)
            .map(|r| {
                let service = &service;
                let query = &query;
                let expected = &expected;
                scope.spawn(move || {
                    let mut last_epoch = 0u64;
                    for i in 0..20u64 {
                        let resp = service
                            .query(ServeRequest::new(r * 100 + i, query.clone(), spec))
                            .unwrap();
                        let epoch = resp.epoch as usize;
                        assert!(epoch <= INSERTS, "unpublished epoch {epoch}");
                        assert!(
                            !resp.degraded,
                            "graph index must stay live across rotation \
                             (reader {r} epoch {epoch} fell back)"
                        );
                        assert_eq!(
                            resp.neighbors, expected[epoch],
                            "reader {r} iteration {i}: graph answer does not \
                             match the corpus of its reported epoch {epoch}"
                        );
                        assert!(resp.epoch >= last_epoch, "epoch went backwards");
                        last_epoch = resp.epoch;
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for reader in readers {
            reader.join().unwrap();
        }
    });

    assert_eq!(service.epoch(), INSERTS as u64);
    assert_eq!(service.len(), INITIAL + INSERTS);
    let last = service
        .query(ServeRequest::new(9999, query.clone(), spec))
        .unwrap();
    assert!(!last.degraded);
    assert_eq!(last.neighbors, expected[INSERTS]);
}

/// Batch inserts are one epoch step: all-or-nothing, single publication.
#[test]
fn batch_insert_publishes_one_epoch() {
    let m = model();
    let initial: Vec<Trajectory> = (0..20).map(|i| traj(i as u64, 5 + (i * 3) % 17)).collect();
    let service = SimilarityService::new(m, initial, &ServiceConfig::default()).unwrap();
    assert_eq!(service.epoch(), 0);

    let more: Vec<Trajectory> = (20..30).map(|i| traj(i as u64, 6 + (i * 5) % 13)).collect();
    service.insert_batch(more).unwrap();
    assert_eq!(service.epoch(), 1);
    assert_eq!(service.len(), 30);

    // A batch containing one invalid trajectory changes nothing at all.
    let poisoned = vec![traj(30, 8), Trajectory::new_unchecked(31, vec![])];
    assert!(service.insert_batch(poisoned).is_err());
    assert_eq!(service.epoch(), 1);
    assert_eq!(service.len(), 30);
}
