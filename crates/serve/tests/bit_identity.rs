//! Concurrency bit-identity suite: answers produced by the coalescing
//! service — concurrent clients, micro-batched dispatch, sharded
//! parallel scans — must equal issuing each query sequentially against
//! the same snapshot, across shard counts and every shortlist mode; and
//! in exact mode the sharded answer must equal the plain unsharded
//! `SimilarityDb::search` bit for bit.

use neutraj_measures::MeasureKind;
use neutraj_model::{AnnParams, BackboneKind, NeuTrajModel, TrainConfig};
use neutraj_obs::Registry;
use neutraj_serve::{
    sequential_reference, QuerySpec, ServeRequest, ServiceConfig, SimilarityService, Snapshot,
};
use neutraj_trajectory::{BoundingBox, Grid, Point, Trajectory};
use std::time::Duration;

fn counter(registry: &Registry, name: &str) -> u64 {
    registry
        .snapshot()
        .counters
        .iter()
        .find(|(n, _)| n == name)
        .map(|&(_, v)| v)
        .unwrap_or_else(|| panic!("counter {name} not registered"))
}

fn model() -> NeuTrajModel {
    let grid = Grid::new(BoundingBox::new(0.0, 0.0, 1000.0, 500.0), 50.0).unwrap();
    let cfg = TrainConfig {
        backbone: BackboneKind::SamLstm,
        dim: 8,
        seed: 9,
        ..TrainConfig::neutraj()
    };
    NeuTrajModel::untrained(cfg, grid)
}

fn traj(id: u64, len: usize) -> Trajectory {
    Trajectory::new_unchecked(
        id,
        (0..len)
            .map(|k| {
                let t = k as f64;
                let i = id as f64;
                Point::new(
                    500.0 + 450.0 * (0.37 * t + 0.13 * i).sin(),
                    250.0 + 220.0 * (0.23 * t - 0.29 * i).cos(),
                )
            })
            .collect(),
    )
}

fn corpus(n: usize) -> Vec<Trajectory> {
    (0..n).map(|i| traj(i as u64, 3 + (i * 7) % 23)).collect()
}

fn queries(n: usize) -> Vec<Trajectory> {
    (0..n)
        .map(|i| traj(1000 + i as u64, 4 + (i * 5) % 19))
        .collect()
}

fn ann_params() -> AnnParams {
    AnnParams {
        nlists: 4,
        train_iters: 10,
        train_sample: 0,
        seed: 7,
    }
}

/// Every shortlist mode the request surface can express.
fn all_specs() -> Vec<QuerySpec> {
    vec![
        QuerySpec::new(5),
        QuerySpec::new(5).shortlist(12).rerank(MeasureKind::Dtw),
        QuerySpec::new(5).rerank(MeasureKind::Hausdorff),
        QuerySpec::new(5).shortlist_ann(2),
        QuerySpec::new(5).shortlist_ann(4),
        QuerySpec::new(5).quantized(),
        QuerySpec::new(5)
            .quantized()
            .shortlist(12)
            .rerank(MeasureKind::Frechet),
    ]
}

fn service_config(nshards: usize) -> ServiceConfig {
    ServiceConfig {
        nshards,
        max_batch: 8,
        batch_deadline: Duration::from_millis(2),
        scan_threads: 2,
        build_threads: 1,
        ann: Some(ann_params()),
        quantized: true,
        ..ServiceConfig::default()
    }
}

/// Coalesced concurrent answers == per-query sequential `search` over
/// the same snapshot, for shard counts 1/2/4 and all shortlist modes.
#[test]
fn coalesced_batches_match_sequential_queries() {
    let m = model();
    let corpus = corpus(48);
    let qs = queries(6);
    for nshards in [1usize, 2, 4] {
        let service =
            SimilarityService::new(m.clone(), corpus.clone(), &service_config(nshards)).unwrap();
        let snapshot = service.snapshot();
        for spec in all_specs() {
            let requests: Vec<ServeRequest> = qs
                .iter()
                .enumerate()
                .map(|(i, q)| ServeRequest::new(i as u64, q.clone(), spec))
                .collect();
            let want = sequential_reference(&snapshot, &requests);
            // Concurrent clients: each thread owns one request and waits
            // for its own answer while the scheduler coalesces them.
            let got: Vec<_> = std::thread::scope(|scope| {
                let handles: Vec<_> = requests
                    .iter()
                    .map(|r| {
                        let service = &service;
                        let r = r.clone();
                        scope.spawn(move || service.query(r))
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            for (i, (got, want)) in got.iter().zip(&want).enumerate() {
                let got = got.as_ref().unwrap_or_else(|e| {
                    panic!("query {i} failed with {e} ({nshards} shards, {spec:?})")
                });
                assert_eq!(got.id, i as u64);
                assert_eq!(
                    &got.neighbors,
                    want.as_ref().unwrap(),
                    "coalesced != sequential at {nshards} shards, {spec:?}"
                );
            }
        }
    }
}

/// In exact mode (and exact + re-rank) the sharded merge is bit-identical
/// to the plain unsharded database search over the concatenated corpus.
#[test]
fn sharded_exact_scan_matches_unsharded_db() {
    let m = model();
    let corpus = corpus(48);
    let qs = queries(6);
    let db = neutraj_model::SimilarityDb::with_corpus(m.clone(), corpus.clone(), 1);
    for nshards in [1usize, 2, 4] {
        let snapshot = Snapshot::build(
            &m,
            corpus.clone(),
            &neutraj_serve::ShardConfig::new(nshards),
        )
        .unwrap();
        for spec in [
            QuerySpec::new(5),
            QuerySpec::new(5).shortlist(12).rerank(MeasureKind::Dtw),
            QuerySpec::new(5).rerank(MeasureKind::Hausdorff),
        ] {
            for q in &qs {
                let sharded = snapshot.search(q, &spec).unwrap();
                let flat = spec.with_query(|query| db.search(q, query)).unwrap();
                assert_eq!(
                    sharded, flat,
                    "sharded exact scan diverged at {nshards} shards, {spec:?}"
                );
            }
        }
    }
}

/// Probing every IVF list recovers the exact scan: same candidates, same
/// exact distances, same `(dist, index)` order.
#[test]
fn full_probe_ivf_matches_exact_scan() {
    let m = model();
    let corpus = corpus(48);
    let qs = queries(6);
    for nshards in [1usize, 2] {
        let cfg = neutraj_serve::ShardConfig {
            nshards,
            build_threads: 1,
            ann: Some(ann_params()),
            graph: None,
            quantized: false,
        };
        let snapshot = Snapshot::build(&m, corpus.clone(), &cfg).unwrap();
        for q in &qs {
            let exact = snapshot.search(q, &QuerySpec::new(5)).unwrap();
            let full_probe = snapshot
                .search(q, &QuerySpec::new(5).shortlist_ann(ann_params().nlists))
                .unwrap();
            assert_eq!(
                full_probe, exact,
                "full-probe IVF diverged at {nshards} shards"
            );
        }
    }
}

/// The scheduler actually coalesces: a burst of submitted requests lands
/// in fewer batches than requests, and every answer still matches the
/// sequential reference.
#[test]
fn burst_coalesces_into_fewer_batches() {
    let registry = Registry::new();
    let m = model();
    let corpus = corpus(48);
    let qs = queries(12);
    let cfg = ServiceConfig {
        nshards: 2,
        max_batch: 8,
        batch_deadline: Duration::from_millis(50),
        ..ServiceConfig::default()
    };
    let service = SimilarityService::with_metrics(m, corpus, &cfg, &registry).unwrap();
    let snapshot = service.snapshot();
    let spec = QuerySpec::new(5);
    let requests: Vec<ServeRequest> = qs
        .iter()
        .enumerate()
        .map(|(i, q)| ServeRequest::new(i as u64, q.clone(), spec))
        .collect();
    let want = sequential_reference(&snapshot, &requests);
    // Open-loop burst: enqueue all twelve before collecting any answer,
    // well inside the 50ms deadline, so the scheduler must coalesce.
    let receivers: Vec<_> = requests.iter().map(|r| service.submit(r.clone())).collect();
    for (i, rx) in receivers.into_iter().enumerate() {
        let got = rx.recv().unwrap().unwrap();
        assert_eq!(got.neighbors, *want[i].as_ref().unwrap());
    }
    let requests_total = counter(&registry, neutraj_obs::names::SERVE_REQUESTS_TOTAL);
    let batches_total = counter(&registry, neutraj_obs::names::SERVE_BATCHES_TOTAL);
    assert_eq!(requests_total, 12);
    assert!(
        batches_total < requests_total,
        "burst of {requests_total} requests dispatched as {batches_total} batches — no coalescing"
    );
}

/// The typed rejection surface: invalid specs, invalid trajectories, and
/// configuration-vs-snapshot mismatches come back as `ServeError::Db`
/// through the normal reply channel — the service route never panics.
#[test]
fn invalid_requests_are_rejected_not_panicked() {
    let registry = Registry::new();
    let m = model();
    // No ANN, no quantized view: those specs must be rejected up front.
    let cfg = ServiceConfig {
        nshards: 2,
        ..ServiceConfig::default()
    };
    let service = SimilarityService::with_metrics(m, corpus(20), &cfg, &registry).unwrap();
    let q = traj(2000, 9);
    let bad = [
        ServeRequest::new(0, q.clone(), QuerySpec::new(0)),
        ServeRequest::new(
            1,
            q.clone(),
            QuerySpec::new(5).shortlist(3).rerank(MeasureKind::Dtw),
        ),
        ServeRequest::new(2, q.clone(), QuerySpec::new(5).shortlist_ann(0)),
        ServeRequest::new(3, q.clone(), QuerySpec::new(5).shortlist_ann(2)),
        ServeRequest::new(4, q.clone(), QuerySpec::new(5).quantized()),
        ServeRequest::new(5, Trajectory::new_unchecked(9, vec![]), QuerySpec::new(5)),
    ];
    let n_bad = bad.len() as u64;
    for req in bad {
        let id = req.id;
        match service.query(req) {
            Err(neutraj_serve::ServeError::Db(_)) => {}
            other => panic!("request {id} should be rejected, got {other:?}"),
        }
    }
    // A valid request on the same service still succeeds afterwards.
    let ok = service
        .query(ServeRequest::new(9, q, QuerySpec::new(5)))
        .unwrap();
    assert_eq!(ok.neighbors.len(), 5);
    let rejects = counter(&registry, neutraj_obs::names::DB_REJECTS_TOTAL);
    assert_eq!(rejects, n_bad, "every rejection is counted exactly once");
}
