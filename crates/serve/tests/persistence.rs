//! Snapshot persistence suite: save/load through the sealed `NTFILE01`
//! envelope round-trips the served corpus bit-identically (exact,
//! quantized, and ANN paths), preserves the epoch across restart, and —
//! the crash-recovery contract — rejects every corrupted image at the
//! envelope before a single payload byte is parsed, so a damaged
//! snapshot can never be adopted.

use neutraj_model::{
    AnnParams, BackboneKind, FaultyReader, FaultyWriter, NeuTrajModel, PersistError, TrainConfig,
};
use neutraj_serve::{QuerySpec, ServeRequest, ServiceConfig, SimilarityService, Snapshot};
use neutraj_trajectory::{BoundingBox, Grid, Point, Trajectory};
use std::time::Duration;

fn model() -> NeuTrajModel {
    let grid = Grid::new(BoundingBox::new(0.0, 0.0, 1000.0, 500.0), 50.0).unwrap();
    let cfg = TrainConfig {
        backbone: BackboneKind::SamLstm,
        dim: 8,
        seed: 13,
        ..TrainConfig::neutraj()
    };
    NeuTrajModel::untrained(cfg, grid)
}

fn traj(id: u64, len: usize) -> Trajectory {
    Trajectory::new_unchecked(
        id,
        (0..len)
            .map(|k| {
                let t = k as f64;
                let i = id as f64;
                Point::new(
                    500.0 + 450.0 * (0.31 * t + 0.17 * i).sin(),
                    250.0 + 220.0 * (0.27 * t - 0.23 * i).cos(),
                )
            })
            .collect(),
    )
}

fn corpus(n: usize) -> Vec<Trajectory> {
    (0..n).map(|i| traj(i as u64, 4 + (i * 7) % 19)).collect()
}

fn full_config() -> ServiceConfig {
    ServiceConfig {
        nshards: 2,
        batch_deadline: Duration::from_micros(200),
        ann: Some(AnnParams {
            nlists: 3,
            train_iters: 5,
            train_sample: 0,
            seed: 7,
        }),
        quantized: true,
        ..ServiceConfig::default()
    }
}

/// Round-trip through the in-memory codec: the rebuilt snapshot answers
/// every query shape bit-identically to the original (the rebuild
/// pipeline — lockstep embed, seeded k-means, int8 views — is
/// deterministic, so recomputing derived state loses nothing).
#[test]
fn snapshot_roundtrip_is_bit_identical_across_query_shapes() {
    let service = SimilarityService::new(model(), corpus(30), &full_config()).unwrap();
    let snapshot = service.snapshot();
    let bytes = snapshot.to_bytes();
    let back = Snapshot::from_bytes(&bytes, 2).unwrap();

    assert_eq!(back.epoch(), snapshot.epoch());
    assert_eq!(back.len(), snapshot.len());
    assert_eq!(back.nshards(), snapshot.nshards());

    let query = traj(5000, 11);
    for spec in [
        QuerySpec::new(5),
        QuerySpec::new(5).quantized(),
        QuerySpec::new(5).shortlist_ann(2),
        QuerySpec::new(3).rerank(neutraj_measures::MeasureKind::Hausdorff),
    ] {
        assert_eq!(
            back.search(&query, &spec).unwrap(),
            snapshot.search(&query, &spec).unwrap(),
            "loaded snapshot diverged for {spec:?}"
        );
    }
}

/// File-level crash recovery: save at a non-zero epoch, load, resume
/// serving — the epoch is preserved (sequences stay non-decreasing
/// across restart) and the resumed service picks up writes from there.
#[test]
fn save_load_resumes_service_at_the_saved_epoch() {
    let dir = std::env::temp_dir().join("neutraj_serve_persistence");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("snapshot.nts");

    let cfg = ServiceConfig {
        nshards: 2,
        batch_deadline: Duration::from_micros(200),
        ..ServiceConfig::default()
    };
    let service = SimilarityService::new(model(), corpus(20), &cfg).unwrap();
    service.insert(traj(20, 9)).unwrap();
    service.insert(traj(21, 12)).unwrap();
    assert_eq!(service.epoch(), 2);

    let query = traj(6000, 10);
    let spec = QuerySpec::new(5);
    let expected = service
        .query(ServeRequest::new(1, query.clone(), spec))
        .unwrap();
    service.save_snapshot(&path).unwrap();
    // No temp file left behind by the atomic write.
    assert!(!dir.join("snapshot.nts.tmp").exists());
    drop(service);

    let restored = Snapshot::load(&path, 2).unwrap();
    assert_eq!(restored.epoch(), 2);
    assert_eq!(restored.len(), 22);
    let resumed = SimilarityService::from_snapshot(restored, &cfg).unwrap();
    let resp = resumed
        .query(ServeRequest::new(2, query.clone(), spec))
        .unwrap();
    assert_eq!(resp.epoch, 2, "saved epoch must survive the restart");
    assert_eq!(resp.neighbors, expected.neighbors);

    // Writes resume from the saved epoch, never reusing an old number.
    resumed.insert(traj(22, 8)).unwrap();
    assert_eq!(resumed.epoch(), 3);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The corruption contract: any damaged image — a flipped bit anywhere,
/// a torn tail, trailing garbage — is rejected by the envelope checks
/// and never adopted as a snapshot.
#[test]
fn corrupted_snapshot_images_are_rejected_never_adopted() {
    let service = SimilarityService::new(model(), corpus(16), &full_config()).unwrap();
    let snapshot = service.snapshot();
    let mut sealed = Vec::new();
    snapshot.write_to(&mut sealed).unwrap();

    // The pristine image loads.
    let mut ok = FaultyReader::new(sealed.clone());
    assert!(Snapshot::read_from(&mut ok, 1).is_ok());

    // A single flipped bit anywhere in the file is caught. Probe a
    // spread of positions: header, lengths, model payload, trajectory
    // data, checksum.
    let step = (sealed.len() / 48).max(1);
    for pos in (0..sealed.len()).step_by(step) {
        let mut r = FaultyReader::new(sealed.clone()).flip_bit(pos, 3);
        let err = Snapshot::read_from(&mut r, 1);
        assert!(err.is_err(), "bit flip at byte {pos} was adopted");
    }

    // Torn writes (truncation at any prefix) are caught by the size
    // check before any parsing.
    for cut in [0, 7, 16, sealed.len() / 2, sealed.len() - 1] {
        let mut r = FaultyReader::new(sealed.clone()).truncate_at(cut);
        match Snapshot::read_from(&mut r, 1) {
            Err(PersistError::Corrupted(_)) | Err(PersistError::Format(_)) => {}
            other => panic!("truncation at {cut} not rejected: {other:?}"),
        }
    }

    // Trailing garbage changes the declared size — rejected.
    let mut over = sealed.clone();
    over.extend_from_slice(b"junk");
    let mut r = FaultyReader::new(over);
    assert!(matches!(
        Snapshot::read_from(&mut r, 1),
        Err(PersistError::Corrupted(_))
    ));

    // A failing sink surfaces the I/O error instead of a half file.
    let mut w = FaultyWriter::fails_after(32);
    assert!(matches!(
        snapshot.write_to(&mut w),
        Err(PersistError::Io(_))
    ));
}
