//! Crash-recoverable snapshot persistence.
//!
//! A served [`Snapshot`] can be sealed to disk and re-adopted after a
//! crash or restart through the same `NTFILE01` envelope contract as
//! model files (`DESIGN.md` §9): `magic ‖ payload_len:u64 ‖ payload ‖
//! crc32(payload):u32`, written via temp-file + fsync + atomic rename.
//! Corruption anywhere in the file — a flipped bit, a torn tail, trailing
//! garbage — is rejected by the envelope **before** a single payload byte
//! is parsed, so a damaged snapshot can never be adopted (the persistence
//! suite drives this with [`FaultyReader`](neutraj_model::FaultyReader)).
//!
//! # What is stored
//!
//! The payload (`NTSNAP01` codec, little-endian throughout) carries the
//! *inputs* of the snapshot, not its derived state:
//!
//! * the epoch and shard layout (`nshards`, quantized/ANN/graph flags,
//!   [`AnnParams`], and [`HnswParams`]),
//! * the trained model through its own `NTMODEL1` codec
//!   ([`NeuTrajModel::to_bytes`]), and
//! * every stored trajectory in **global** order (id + raw points).
//!
//! Embeddings, IVF centroids, HNSW graphs, and int8 views are
//! *recomputed* on load by [`Snapshot::build`] — the build pipeline is
//! deterministic (lockstep batched embed, seeded k-means, seeded
//! hashed-level graph construction), so the rebuilt snapshot answers
//! queries bit-identically to the one that was saved, and the file stays
//! compact and structurally simple enough to validate field by field.

use crate::snapshot::{ShardConfig, Snapshot};
use neutraj_model::persist::{
    atomic_write, open_payload, read_enveloped, seal_payload, write_enveloped,
};
use neutraj_model::{AnnParams, HnswParams, NeuTrajModel, PersistError};
use neutraj_trajectory::{Point, Trajectory};
use std::fs::File;
use std::io::{Read, Write};
use std::path::Path;

/// Magic header + format version of the snapshot payload codec.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"NTSNAP01";

const FLAG_QUANTIZED: u8 = 1 << 0;
const FLAG_ANN: u8 = 1 << 1;
const FLAG_GRAPH: u8 = 1 << 2;

fn fail(msg: impl Into<String>) -> PersistError {
    PersistError::Format(msg.into())
}

// ---------------------------------------------------------------------------
// Little-endian cursor helpers (the serve crate stays dependency-free,
// so no `bytes` here — a borrowed-slice cursor is all the codec needs).
// ---------------------------------------------------------------------------

struct Reader<'a> {
    data: &'a [u8],
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], PersistError> {
        if self.data.len() < n {
            return Err(fail(format!(
                "truncated snapshot: need {n} bytes for {what}, have {}",
                self.data.len()
            )));
        }
        let (head, tail) = self.data.split_at(n);
        self.data = tail;
        Ok(head)
    }

    fn u8(&mut self, what: &str) -> Result<u8, PersistError> {
        Ok(self.take(1, what)?[0])
    }

    fn u64(&mut self, what: &str) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(
            self.take(8, what)?.try_into().expect("8 bytes"),
        ))
    }

    fn usize(&mut self, what: &str) -> Result<usize, PersistError> {
        let v = self.u64(what)?;
        usize::try_from(v).map_err(|_| fail(format!("{what} {v} overflows usize")))
    }

    fn f64(&mut self, what: &str) -> Result<f64, PersistError> {
        Ok(f64::from_le_bytes(
            self.take(8, what)?.try_into().expect("8 bytes"),
        ))
    }
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

impl Snapshot {
    /// Serializes the snapshot into the raw `NTSNAP01` payload (no file
    /// envelope — see [`Snapshot::save`] for the checksummed form).
    pub fn to_bytes(&self) -> Vec<u8> {
        let cfg = self.shard_config();
        let model_bytes = self.model().to_bytes();
        let mut out = Vec::with_capacity(model_bytes.len() + (1 << 12));
        out.extend_from_slice(SNAPSHOT_MAGIC);
        put_u64(&mut out, self.epoch());
        put_u64(&mut out, self.nshards() as u64);
        let mut flags = 0u8;
        if cfg.quantized {
            flags |= FLAG_QUANTIZED;
        }
        if cfg.ann.is_some() {
            flags |= FLAG_ANN;
        }
        if cfg.graph.is_some() {
            flags |= FLAG_GRAPH;
        }
        out.push(flags);
        if let Some(ann) = &cfg.ann {
            put_u64(&mut out, ann.nlists as u64);
            put_u64(&mut out, ann.train_iters as u64);
            put_u64(&mut out, ann.train_sample as u64);
            put_u64(&mut out, ann.seed);
        }
        if let Some(graph) = &cfg.graph {
            put_u64(&mut out, graph.m as u64);
            put_u64(&mut out, graph.m0 as u64);
            put_u64(&mut out, graph.ef_construction as u64);
            put_u64(&mut out, graph.seed);
        }
        put_u64(&mut out, model_bytes.len() as u64);
        out.extend_from_slice(&model_bytes);
        put_u64(&mut out, self.len() as u64);
        // Global order, so load-time round-robin placement reproduces
        // the exact shard layout (and therefore the exact global
        // indices) of the saved snapshot.
        for g in 0..self.len() {
            let t = self.trajectory(g).expect("global index in range");
            put_u64(&mut out, t.id);
            put_u64(&mut out, t.points().len() as u64);
            for p in t.points() {
                put_f64(&mut out, p.x);
                put_f64(&mut out, p.y);
            }
        }
        out
    }

    /// Rebuilds a snapshot from a raw payload produced by
    /// [`Snapshot::to_bytes`]. `build_threads` is the load-time embed
    /// parallelism — it affects speed only, never the rebuilt bits.
    pub fn from_bytes(data: &[u8], build_threads: usize) -> Result<Self, PersistError> {
        let mut r = Reader { data };
        if r.take(8, "magic")? != SNAPSHOT_MAGIC {
            return Err(fail("bad snapshot magic (not a NeuTraj snapshot?)"));
        }
        let epoch = r.u64("epoch")?;
        let nshards = r.usize("shard count")?;
        if nshards == 0 {
            return Err(fail("snapshot declares zero shards"));
        }
        let flags = r.u8("flags")?;
        if flags & !(FLAG_QUANTIZED | FLAG_ANN | FLAG_GRAPH) != 0 {
            return Err(fail(format!("unknown snapshot flags {flags:#04x}")));
        }
        let ann = if flags & FLAG_ANN != 0 {
            Some(AnnParams {
                nlists: r.usize("ann nlists")?,
                train_iters: r.usize("ann train_iters")?,
                train_sample: r.usize("ann train_sample")?,
                seed: r.u64("ann seed")?,
            })
        } else {
            None
        };
        let graph = if flags & FLAG_GRAPH != 0 {
            let params = HnswParams {
                m: r.usize("graph m")?,
                m0: r.usize("graph m0")?,
                ef_construction: r.usize("graph ef_construction")?,
                seed: r.u64("graph seed")?,
            };
            params
                .validate()
                .map_err(|e| fail(format!("stored graph params are invalid: {e}")))?;
            Some(params)
        } else {
            None
        };
        let model_len = r.usize("model length")?;
        let model = NeuTrajModel::from_bytes(r.take(model_len, "model payload")?)?;
        let ntraj = r.usize("trajectory count")?;
        let mut corpus = Vec::with_capacity(ntraj.min(1 << 20));
        for g in 0..ntraj {
            let id = r.u64("trajectory id")?;
            let npts = r.usize("point count")?;
            // 16 bytes per point must still fit in what remains — reject
            // an implausible count before reserving for it.
            if r.data.len() / 16 < npts {
                return Err(fail(format!(
                    "truncated snapshot: trajectory {g} declares {npts} points, \
                     only {} bytes remain",
                    r.data.len()
                )));
            }
            let mut points = Vec::with_capacity(npts);
            for _ in 0..npts {
                let x = r.f64("point x")?;
                let y = r.f64("point y")?;
                points.push(Point::new(x, y));
            }
            let t = Trajectory::new(id, points)
                .map_err(|e| fail(format!("invalid stored trajectory {g} (id {id}): {e}")))?;
            corpus.push(t);
        }
        if !r.data.is_empty() {
            return Err(fail(format!(
                "{} trailing bytes after the snapshot payload",
                r.data.len()
            )));
        }
        let cfg = ShardConfig {
            nshards,
            build_threads: build_threads.max(1),
            ann,
            graph,
            quantized: flags & FLAG_QUANTIZED != 0,
        };
        let snapshot = Snapshot::build(&model, corpus, &cfg)
            .map_err(|e| fail(format!("stored snapshot fails to rebuild: {e}")))?;
        Ok(snapshot.with_epoch(epoch))
    }

    /// Writes the snapshot through any [`Write`] sink, wrapped in the
    /// checksummed `NTFILE01` envelope — the seam the fault-injection
    /// harness targets (see [`FaultyWriter`](neutraj_model::FaultyWriter)).
    pub fn write_to<W: Write>(&self, w: &mut W) -> Result<(), PersistError> {
        write_enveloped(w, &self.to_bytes())
    }

    /// Reads an envelope-wrapped snapshot from any [`Read`] source,
    /// verifying size and checksum before parsing a single payload byte
    /// (see [`FaultyReader`](neutraj_model::FaultyReader)).
    pub fn read_from<R: Read>(r: &mut R, build_threads: usize) -> Result<Self, PersistError> {
        let payload = read_enveloped(r)?;
        Self::from_bytes(&payload, build_threads)
    }

    /// Persists the snapshot to a file: checksummed envelope, temp-file +
    /// fsync + atomic rename — a crash mid-save leaves either the old
    /// file or the new one, never a torn mix.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<(), PersistError> {
        atomic_write(path.as_ref(), &seal_payload(&self.to_bytes()))
    }

    /// Loads a snapshot saved by [`Snapshot::save`], rebuilding shards
    /// with `build_threads`-way embed parallelism. Pair with
    /// [`SimilarityService::from_snapshot`](crate::SimilarityService::from_snapshot)
    /// to resume serving at the saved epoch.
    pub fn load<P: AsRef<Path>>(path: P, build_threads: usize) -> Result<Self, PersistError> {
        let mut data = Vec::new();
        File::open(path)?.read_to_end(&mut data)?;
        Self::from_bytes(open_payload(&data)?, build_threads)
    }
}
