//! The typed request/response surface shared by the service, the CLI,
//! and library callers.
//!
//! [`QuerySpec`] is the *owned* twin of the borrow-based
//! [`Query`](neutraj_model::Query) builder: same knobs, but the re-rank
//! measure is named by [`MeasureKind`] instead of borrowed, so a spec can
//! cross threads, sit in a queue, and key a coalescing group. Every
//! execution path lowers a spec to a `Query` through
//! [`QuerySpec::with_query`], so the two surfaces cannot drift.

use neutraj_measures::{MeasureKind, Neighbor};
use neutraj_model::{DbError, Query};
use neutraj_trajectory::Trajectory;
use std::time::Duration;

/// An owned, hashable description of *how* to search — the micro-batching
/// scheduler coalesces concurrent requests with equal specs into one
/// lockstep batch, so equality doubles as batch-compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct QuerySpec {
    k: usize,
    shortlist: Option<usize>,
    nprobe: Option<usize>,
    ef: Option<usize>,
    quantized: bool,
    rerank: Option<MeasureKind>,
}

impl QuerySpec {
    /// A plain embedding-distance top-`k` spec.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            ..Self::default()
        }
    }

    /// Sets the embedding-space shortlist width (see
    /// [`Query::shortlist`]).
    pub fn shortlist(mut self, shortlist: usize) -> Self {
        self.shortlist = Some(shortlist);
        self
    }

    /// Routes the scan through the per-shard IVF index, probing `nprobe`
    /// lists per shard (see [`Query::shortlist_ann`]).
    pub fn shortlist_ann(mut self, nprobe: usize) -> Self {
        self.nprobe = Some(nprobe);
        self
    }

    /// Routes the scan through the per-shard HNSW graph index with beam
    /// width `ef` (see [`Query::shortlist_graph`]). When the serving
    /// snapshot has no graph index but does have an IVF index, the
    /// service degrades the request to the IVF shortlist instead of
    /// rejecting it (tagged `degraded: true`).
    pub fn shortlist_graph(mut self, ef: usize) -> Self {
        self.ef = Some(ef);
        self
    }

    /// Scans through the per-shard int8-quantized view (see
    /// [`Query::quantized`]).
    pub fn quantized(mut self) -> Self {
        self.quantized = true;
        self
    }

    /// Re-ranks the merged shortlist with the exact `measure` and returns
    /// the top-k of that ordering (see [`Query::rerank`]).
    pub fn rerank(mut self, measure: MeasureKind) -> Self {
        self.rerank = Some(measure);
        self
    }

    /// Number of results requested.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The re-rank measure, when configured.
    pub fn rerank_measure(&self) -> Option<MeasureKind> {
        self.rerank
    }

    /// Whether the scan goes through the quantized view.
    pub fn is_quantized(&self) -> bool {
        self.quantized
    }

    /// The per-shard ANN probe width, when configured.
    pub fn ann_nprobe(&self) -> Option<usize> {
        self.nprobe
    }

    /// The per-shard graph beam width, when configured.
    pub fn graph_ef(&self) -> Option<usize> {
        self.ef
    }

    /// The degrade-ladder rewrite from the graph backend to the IVF
    /// backend: clears the beam width and probes `nprobe` lists instead
    /// (the two backends are mutually exclusive, so a plain
    /// `shortlist_ann` on a graph spec would produce an invalid spec).
    pub(crate) fn graph_to_ann(mut self, nprobe: usize) -> Self {
        self.ef = None;
        self.nprobe = Some(nprobe);
        self
    }

    /// Whether the scan stage is the full-precision exhaustive scan —
    /// the only shape the overload ladder may downgrade to a cheaper
    /// shortlist view (a spec already on a shortlist view has nothing
    /// cheaper to fall back to).
    pub(crate) fn is_exact_scan(&self) -> bool {
        !self.quantized && self.nprobe.is_none() && self.ef.is_none()
    }

    /// Runs `f` with the equivalent borrow-based [`Query`], holding the
    /// instantiated re-rank measure alive for the duration. This is the
    /// single lowering from the owned surface to the execution surface —
    /// the CLI's direct path and the service's sharded path both go
    /// through it.
    pub fn with_query<R>(&self, f: impl FnOnce(&Query) -> R) -> R {
        let measure = self.rerank.map(|kind| kind.measure());
        let mut q = Query::new(self.k);
        if let Some(s) = self.shortlist {
            q = q.shortlist(s);
        }
        if let Some(np) = self.nprobe {
            q = q.shortlist_ann(np);
        }
        if let Some(ef) = self.ef {
            q = q.shortlist_graph(ef);
        }
        if self.quantized {
            q = q.quantized();
        }
        if let Some(m) = &measure {
            q = q.rerank(&**m);
        }
        f(&q)
    }

    /// The scan-stage `Query` (everything but the re-rank, which a
    /// sharded search applies once, globally, after the merge).
    pub(crate) fn scan_query(&self) -> Query<'static> {
        let mut q = Query::new(self.k);
        if let Some(s) = self.shortlist {
            q = q.shortlist(s);
        }
        if let Some(np) = self.nprobe {
            q = q.shortlist_ann(np);
        }
        if let Some(ef) = self.ef {
            q = q.shortlist_graph(ef);
        }
        if self.quantized {
            q = q.quantized();
        }
        q
    }

    /// The fetch width of the scan stage: the effective shortlist when a
    /// re-rank follows, otherwise `k` — mirrors what
    /// [`SimilarityDb::search`](neutraj_model::SimilarityDb::search)
    /// fetches, which keeps the sharded path bit-identical to it.
    pub(crate) fn scan_fetch(&self) -> usize {
        self.with_query(|q| match q.rerank_measure() {
            Some(_) => q.effective_shortlist(),
            None => q.k(),
        })
    }

    /// The database-independent validity check, shared verbatim with the
    /// direct path (it is [`Query::validate`] under the hood).
    pub fn validate(&self) -> Result<(), ServeError> {
        self.with_query(|q| q.validate())
            .map_err(|reason| ServeError::Db(DbError::InvalidConfig(reason)))
    }
}

/// Scheduling class of a request in the coalescing queue. The scheduler
/// serves the high lane first, with anti-starvation promotion for
/// overdue normal work (see the [`service`](crate::service) docs); when
/// the bounded queue is full, an arriving high-priority request may
/// evict the newest queued normal-priority request (typed
/// [`ServeError::Overloaded`], counted in `neutraj_serve_shed_total`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Priority {
    /// Best-effort work: served in arrival order after the high lane,
    /// sheddable under overload.
    #[default]
    Normal,
    /// Latency-sensitive work: dispatched ahead of the normal lane and
    /// never evicted by admission shedding.
    High,
}

/// One query request: a caller-chosen correlation id, the ad-hoc query
/// trajectory, and the spec describing how to search.
#[derive(Debug, Clone)]
pub struct ServeRequest {
    /// Caller-chosen id, echoed in the response (requests coalesced into
    /// one batch complete in arbitrary order relative to each other).
    pub id: u64,
    /// The query trajectory; embedded once, in lockstep with the rest of
    /// its micro-batch.
    pub trajectory: Trajectory,
    /// How to search.
    pub spec: QuerySpec,
    /// Time budget measured from submission. Work whose budget expires
    /// is answered [`ServeError::DeadlineExceeded`] — at dequeue without
    /// burning a scan, or by the cooperative between-shard cancellation
    /// checks mid-scan. `None` means no deadline.
    pub deadline: Option<Duration>,
    /// Scheduling class (see [`Priority`]).
    pub priority: Priority,
}

impl ServeRequest {
    /// Convenience constructor: no deadline, normal priority.
    pub fn new(id: u64, trajectory: Trajectory, spec: QuerySpec) -> Self {
        Self {
            id,
            trajectory,
            spec,
            deadline: None,
            priority: Priority::Normal,
        }
    }

    /// Sets the time budget, measured from the moment the request is
    /// submitted.
    pub fn with_deadline(mut self, budget: Duration) -> Self {
        self.deadline = Some(budget);
        self
    }

    /// Sets the scheduling class.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }
}

/// The answer to one [`ServeRequest`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServeResponse {
    /// The request's correlation id.
    pub id: u64,
    /// Top-k neighbors as **global** corpus indices, bit-identical to a
    /// sequential [`Query`] search over the same snapshot.
    pub neighbors: Vec<Neighbor>,
    /// Epoch of the snapshot that answered — two responses with the same
    /// epoch saw the identical corpus.
    pub epoch: u64,
    /// `true` when the overload ladder downgraded this request's
    /// exact-scan spec to a quantized/ANN shortlist view under queue
    /// pressure: the answer is a best-effort shortlist result, not the
    /// exact-scan oracle answer. Never set silently — every degraded
    /// response counts into `neutraj_serve_degraded_total`.
    pub degraded: bool,
    /// `true` when one or more shards were quarantined (or panicked)
    /// during this scan: the answer covers the healthy shards only.
    /// Counted into `neutraj_serve_shard_quarantined_total` at the
    /// quarantine event.
    pub partial: bool,
}

/// Typed failure of the service route. The service never panics on
/// request input: every invalid request folds into a [`ServeError`]
/// (and counts into `neutraj_db_rejects_total` when instrumented).
#[derive(Debug)]
pub enum ServeError {
    /// The request was rejected at a validation boundary — the spec's
    /// own invariants, the trajectory check, or a per-shard database
    /// rejection, all folded into the one typed [`DbError`].
    Db(DbError),
    /// The service is shutting down and no longer accepts requests.
    ShuttingDown,
    /// The worker dropped the reply channel without answering — only
    /// possible if the service was torn down mid-request.
    Dropped,
    /// The bounded admission queue is full (or this request was evicted
    /// to admit higher-priority work). The hint estimates how long the
    /// backlog needs to drain — callers should back off at least that
    /// long before retrying.
    Overloaded {
        /// Estimated backlog drain time at the moment of rejection.
        retry_after_hint: Duration,
    },
    /// The request's time budget expired before an answer was produced.
    DeadlineExceeded,
}

impl From<DbError> for ServeError {
    fn from(e: DbError) -> Self {
        ServeError::Db(e)
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Db(e) => write!(f, "request rejected: {e}"),
            Self::ShuttingDown => write!(f, "service is shutting down"),
            Self::Dropped => write!(f, "service dropped the request mid-flight"),
            Self::Overloaded { retry_after_hint } => write!(
                f,
                "service overloaded: retry after ~{:.1}ms",
                retry_after_hint.as_secs_f64() * 1e3
            ),
            Self::DeadlineExceeded => write!(f, "request deadline exceeded"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Db(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_lowers_to_the_same_query() {
        let spec = QuerySpec::new(7)
            .shortlist(20)
            .shortlist_ann(3)
            .quantized()
            .rerank(MeasureKind::Hausdorff);
        spec.with_query(|q| {
            assert_eq!(q.k(), 7);
            assert_eq!(q.effective_shortlist(), 20);
            assert_eq!(q.ann_nprobe(), Some(3));
            assert!(q.is_quantized());
            assert!(q.rerank_measure().is_some());
        });
        assert_eq!(spec.scan_fetch(), 20);
        assert_eq!(QuerySpec::new(7).scan_fetch(), 7);
        // Default shortlist matches Query's max(2k, 50).
        assert_eq!(QuerySpec::new(7).rerank(MeasureKind::Dtw).scan_fetch(), 50);
        // The graph beam width lowers through the same single path.
        let graph = QuerySpec::new(5).shortlist_graph(40);
        graph.with_query(|q| {
            assert_eq!(q.graph_ef(), Some(40));
            assert_eq!(q.ann_nprobe(), None);
        });
        assert_eq!(graph.graph_ef(), Some(40));
    }

    #[test]
    fn request_builders_set_deadline_and_priority() {
        let t = Trajectory::new_unchecked(1, vec![]);
        let req = ServeRequest::new(7, t.clone(), QuerySpec::new(3));
        assert_eq!(req.priority, Priority::Normal);
        assert!(req.deadline.is_none());
        let req = req
            .with_deadline(Duration::from_millis(5))
            .with_priority(Priority::High);
        assert_eq!(req.deadline, Some(Duration::from_millis(5)));
        assert_eq!(req.priority, Priority::High);
        // Only the full-precision exhaustive scan is downgrade-eligible.
        assert!(QuerySpec::new(3).is_exact_scan());
        assert!(QuerySpec::new(3).rerank(MeasureKind::Dtw).is_exact_scan());
        assert!(!QuerySpec::new(3).quantized().is_exact_scan());
        assert!(!QuerySpec::new(3).shortlist_ann(2).is_exact_scan());
        // A graph spec already sits on a shortlist view.
        assert!(!QuerySpec::new(3).shortlist_graph(8).is_exact_scan());
    }

    #[test]
    fn spec_validation_matches_query_validation() {
        assert!(QuerySpec::new(0).validate().is_err());
        assert!(QuerySpec::new(5).shortlist(3).validate().is_err());
        assert!(QuerySpec::new(5).shortlist_ann(0).validate().is_err());
        assert!(QuerySpec::new(5).shortlist(5).validate().is_ok());
        assert!(QuerySpec::new(1).validate().is_ok());
        // Graph-spec invariants are Query::validate's, verbatim.
        assert!(QuerySpec::new(5).shortlist_graph(0).validate().is_err());
        assert!(QuerySpec::new(5).shortlist_graph(3).validate().is_err());
        assert!(QuerySpec::new(5)
            .shortlist_graph(8)
            .shortlist_ann(2)
            .validate()
            .is_err());
        assert!(QuerySpec::new(5)
            .shortlist_graph(8)
            .quantized()
            .validate()
            .is_err());
        assert!(QuerySpec::new(5).shortlist_graph(8).validate().is_ok());
    }
}
