//! Immutable, sharded read snapshots.
//!
//! A [`Snapshot`] is the unit of epoch rotation: readers clone an
//! `Arc<Snapshot>` and scan it without any coordination; writers build
//! the *next* snapshot off to the side (copy-on-write) and publish it
//! with a pointer swap. A snapshot holds `S` round-robin shards, each a
//! complete [`SimilarityDb`] partition (embeddings + optional per-shard
//! IVF index and int8 view), scanned independently and merged under the
//! scan's `(dist, index)` total order.
//!
//! # Why the sharded scan is bit-identical (exact mode)
//!
//! Round-robin placement maps shard-local row `l` of shard `s` to global
//! row `g = l·S + s` — strictly increasing in `l`, so each shard's
//! `(dist, local)` order *is* its `(dist, global)` order. The per-row
//! norm-trick score is a pure function of (query row, corpus row):
//! `matmul_nt` computes every output element as one ascending-index dot
//! accumulator, independent of batch size and blocking, so a row scores
//! identically in any shard of any snapshot. Each shard returns its top
//! `fetch` under the `(dist, index)` total order; the union of the
//! per-shard top-`fetch` lists contains the global top-`fetch` (every
//! global winner is a winner within its own shard), so sorting the
//! concatenation by `(dist, global index)` and truncating to `fetch`
//! reproduces the unsharded scan's list element for element, bit for
//! bit. IVF and quantized shortlists are per-shard structures, so their
//! *recall* depends on the sharding, but every scored distance is still
//! exact and the merged result is still deterministic for a given
//! snapshot — the concurrency bit-identity tests pin both claims.

use crate::request::QuerySpec;
use neutraj_measures::Neighbor;
use neutraj_model::{AnnParams, DbError, HnswParams, NeuTrajModel, SimilarityDb};
use neutraj_trajectory::Trajectory;
use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

/// Signature of the test-only scan fault injector: called with the shard
/// index just before that shard scans; returning `true` panics the scan
/// (inside the `catch_unwind` isolation boundary).
pub(crate) type ScanFault = dyn Fn(usize) -> bool + Send + Sync;

/// Failure-handling knobs for one guarded scan (the service's view; the
/// public [`Snapshot::search_batch`] runs unguarded).
pub(crate) struct ScanGuard<'a> {
    /// Latest deadline among the batch members — the cooperative
    /// cancellation checks between shard scans abort once it passes.
    pub deadline: Option<Instant>,
    /// Per-shard quarantine mask (`true` = do not scan); empty skips
    /// nothing.
    pub skip: &'a [bool],
    /// Test-only fault injector (see [`ScanFault`]).
    pub fault: Option<&'a ScanFault>,
}

impl ScanGuard<'_> {
    /// No deadline, no quarantine, no injected faults.
    pub(crate) fn none() -> Self {
        Self {
            deadline: None,
            skip: &[],
            fault: None,
        }
    }
}

/// Outcome of one guarded scan: merged results plus the failure facts
/// the service folds into quarantine state and response markers.
pub(crate) struct GuardedScan {
    /// Merged per-query results over the contributing shards. Empty when
    /// `expired`.
    pub results: Vec<Vec<Neighbor>>,
    /// Shards whose scan panicked this pass (isolated by
    /// `catch_unwind`; their candidates are absent from `results`).
    pub failed: Vec<usize>,
    /// The first captured panic payload, for callers that want to
    /// re-raise instead of degrade (the public `search_batch` contract).
    pub first_panic: Option<Box<dyn Any + Send>>,
    /// Number of shards skipped by the quarantine mask.
    pub skipped: usize,
    /// The deadline passed before results were produced; `results` is
    /// empty and must not be used.
    pub expired: bool,
}

impl GuardedScan {
    /// `true` when at least one shard did not contribute.
    pub(crate) fn is_partial(&self) -> bool {
        self.skipped > 0 || !self.failed.is_empty()
    }
}

/// How to build a [`Snapshot`]'s shards.
#[derive(Debug, Clone, Default)]
pub struct ShardConfig {
    /// Number of round-robin partitions (0 is rejected).
    pub nshards: usize,
    /// Worker threads for the bulk corpus embed at build time.
    pub build_threads: usize,
    /// Train a per-shard IVF index over each partition when set.
    pub ann: Option<AnnParams>,
    /// Build a per-shard HNSW graph index over each partition when set.
    pub graph: Option<HnswParams>,
    /// Build a per-shard int8-quantized view when `true`.
    pub quantized: bool,
}

impl ShardConfig {
    /// A plain `nshards`-way exact-scan configuration.
    pub fn new(nshards: usize) -> Self {
        Self {
            nshards,
            build_threads: 1,
            ann: None,
            graph: None,
            quantized: false,
        }
    }
}

/// One immutable corpus view: `S` round-robin [`SimilarityDb`] shards
/// plus the epoch that named it.
#[derive(Debug, Clone)]
pub struct Snapshot {
    epoch: u64,
    shards: Vec<SimilarityDb>,
    len: usize,
    /// The ANN params the shards were built with — retained so a saved
    /// snapshot can rebuild its per-shard indexes on load (they are not
    /// recoverable from the built index alone).
    ann: Option<AnnParams>,
    /// The HNSW params the shards were built with (same retention
    /// rationale as `ann`).
    graph: Option<HnswParams>,
    /// Whether per-shard int8 views were requested at build time.
    quantized: bool,
}

impl Snapshot {
    /// Builds epoch-0 over `corpus`, partitioned round-robin (global row
    /// `g` lands in shard `g % S` at local row `g / S`). Each shard
    /// embeds its partition with the lockstep batched forward; per-shard
    /// IVF/quantized structures are built when configured.
    pub fn build(
        model: &NeuTrajModel,
        corpus: Vec<Trajectory>,
        cfg: &ShardConfig,
    ) -> Result<Self, DbError> {
        if cfg.nshards == 0 {
            return Err(DbError::InvalidConfig(
                "a snapshot needs at least one shard (nshards == 0)".into(),
            ));
        }
        let nshards = cfg.nshards;
        let mut parts: Vec<Vec<Trajectory>> = (0..nshards).map(|_| Vec::new()).collect();
        for (g, t) in corpus.into_iter().enumerate() {
            parts[g % nshards].push(t);
        }
        if cfg.ann.is_some() && parts.iter().any(|p| p.is_empty()) {
            return Err(DbError::InvalidConfig(format!(
                "per-shard ANN needs every shard non-empty: corpus too small for {nshards} shards"
            )));
        }
        if cfg.graph.is_some() && parts.iter().any(|p| p.is_empty()) {
            return Err(DbError::InvalidConfig(format!(
                "per-shard graph index needs every shard non-empty: \
                 corpus too small for {nshards} shards"
            )));
        }
        let threads = cfg.build_threads.max(1);
        let mut shards = Vec::with_capacity(nshards);
        let mut len = 0;
        for part in parts {
            let mut db = SimilarityDb::new(model.clone());
            len += part.len();
            db.insert_batch(part, threads)?;
            if let Some(params) = &cfg.ann {
                if !db.is_empty() {
                    db.build_ann_index(params)?;
                }
            }
            if let Some(params) = &cfg.graph {
                if !db.is_empty() {
                    db.build_graph_index(params, threads)?;
                }
            }
            if cfg.quantized {
                db.build_quantized_store();
            }
            shards.push(db);
        }
        Ok(Self {
            epoch: 0,
            shards,
            len,
            ann: cfg.ann.clone(),
            graph: cfg.graph,
            quantized: cfg.quantized,
        })
    }

    /// The [`ShardConfig`] that rebuilds an equivalent snapshot (used by
    /// the persistence codec; `build_threads` is a load-time choice, not
    /// a property of the snapshot).
    pub(crate) fn shard_config(&self) -> ShardConfig {
        ShardConfig {
            nshards: self.nshards(),
            build_threads: 1,
            ann: self.ann.clone(),
            graph: self.graph,
            quantized: self.quantized,
        }
    }

    /// Renames the epoch — the persistence loader restores the saved
    /// epoch so sequences stay non-decreasing across a crash/restart.
    pub(crate) fn with_epoch(mut self, epoch: u64) -> Self {
        self.epoch = epoch;
        self
    }

    /// Whether this snapshot carries per-shard int8 views (a degrade
    /// target for the overload ladder).
    pub(crate) fn has_quantized(&self) -> bool {
        self.quantized && self.shards[0].quantized_store().is_some()
    }

    /// The per-shard IVF list count when ANN indexes are built (the
    /// other degrade target).
    pub(crate) fn ann_nlists(&self) -> Option<usize> {
        self.shards[0].ann_index().map(|ix| ix.nlists())
    }

    /// Whether every shard carries an HNSW graph index — a graph spec is
    /// answerable only when they all do (and the graph→IVF degrade rung
    /// fires only when they don't).
    pub(crate) fn has_graph(&self) -> bool {
        self.graph.is_some() && self.shards.iter().all(|s| s.graph_index().is_some())
    }

    /// The epoch counter: bumped by one on every published mutation.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Total stored trajectories across all shards.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when no trajectories are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of shards.
    pub fn nshards(&self) -> usize {
        self.shards.len()
    }

    /// The shared model (all shards hold clones of the same weights).
    pub fn model(&self) -> &NeuTrajModel {
        self.shards[0].model()
    }

    /// Borrow shard `s`.
    pub fn shard(&self, s: usize) -> &SimilarityDb {
        &self.shards[s]
    }

    /// The stored trajectory at **global** index `g`.
    pub fn trajectory(&self, g: usize) -> Option<&Trajectory> {
        let s = self.nshards();
        self.shards.get(g % s)?.get(g / s)
    }

    /// The next snapshot with `ts` appended — copy-on-write: `self` is
    /// untouched (readers holding it drain undisturbed), the clone
    /// absorbs the inserts (each shard's IVF/quantized structures stay in
    /// lockstep via [`SimilarityDb::insert`]), and the epoch advances.
    /// All-or-nothing on invalid input for free: a rejected trajectory
    /// discards the half-built clone.
    pub fn inserted(&self, ts: &[Trajectory]) -> Result<Self, DbError> {
        let mut next = self.clone();
        next.epoch += 1;
        let s = next.shards.len();
        for t in ts {
            let g = next.len;
            let local = next.shards[g % s].insert(t.clone())?;
            debug_assert_eq!(local, g / s, "round-robin placement drifted");
            next.len += 1;
        }
        Ok(next)
    }

    /// Answers one ad-hoc query — identical semantics (and, in exact
    /// mode, identical bits) to `SimilarityDb::search(trajectory, query)`
    /// over the concatenated corpus.
    pub fn search(&self, query: &Trajectory, spec: &QuerySpec) -> Result<Vec<Neighbor>, DbError> {
        Ok(self
            .search_batch(std::slice::from_ref(query), spec, 1)?
            .pop()
            .expect("one query in, one result out"))
    }

    /// Answers a batch of ad-hoc queries with one lockstep batched embed
    /// and one scan per shard shared by the whole batch; per-shard scans
    /// run on up to `scan_threads` scoped threads. Each result is
    /// bit-identical to [`Snapshot::search`] on that query — the scan's
    /// per-row score is batch-size-invariant, which is what lets the
    /// micro-batching scheduler coalesce requests without changing
    /// anyone's answer.
    pub fn search_batch(
        &self,
        queries: &[Trajectory],
        spec: &QuerySpec,
        scan_threads: usize,
    ) -> Result<Vec<Vec<Neighbor>>, DbError> {
        let scan = self.scan_batch_guarded(queries, spec, scan_threads, &ScanGuard::none())?;
        // Unguarded contract: a shard panic propagates to the caller
        // exactly as it did before panic isolation existed.
        if let Some(payload) = scan.first_panic {
            std::panic::resume_unwind(payload);
        }
        Ok(scan.results)
    }

    /// The guarded core of [`Snapshot::search_batch`]: shard scans run
    /// under `catch_unwind` so one panicking shard cannot take down the
    /// caller, quarantined shards are skipped, and the deadline is
    /// checked cooperatively — before the embed, between sequential
    /// shard scans, and before the re-rank stage — so expired work stops
    /// burning CPU as early as possible. Configuration errors
    /// ([`DbError`]) still return `Err`; panics and skips are reported
    /// as data in the [`GuardedScan`].
    pub(crate) fn scan_batch_guarded(
        &self,
        queries: &[Trajectory],
        spec: &QuerySpec,
        scan_threads: usize,
        guard: &ScanGuard<'_>,
    ) -> Result<GuardedScan, DbError> {
        for t in queries {
            t.validate()
                .map_err(|reason| DbError::InvalidTrajectory { id: t.id, reason })?;
        }
        let scan_query = spec.scan_query();
        // Surface configuration rejections before embedding work, and
        // from every shard's perspective at once (shards are uniform, so
        // shard 0 speaks for all).
        self.shards[0].scan_embeddings(&[], 0, &scan_query)?;
        let nshards = self.nshards();
        let skipped = guard.skip.iter().filter(|&&s| s).count();
        let mut out = GuardedScan {
            results: Vec::new(),
            failed: Vec::new(),
            first_panic: None,
            skipped,
            expired: false,
        };
        let expired = |d: &Option<Instant>| d.is_some_and(|d| Instant::now() >= d);
        if expired(&guard.deadline) {
            out.expired = true;
            return Ok(out);
        }
        let fetch = spec.scan_fetch();
        let qembs = self.model().embed_batch(queries);
        let qrefs: Vec<&[f64]> = qembs.iter().map(|e| e.as_slice()).collect();

        let is_skipped = |s: usize| guard.skip.get(s).copied().unwrap_or(false);
        let scan = |s: usize, db: &SimilarityDb| {
            catch_unwind(AssertUnwindSafe(|| {
                if let Some(fault) = guard.fault {
                    if fault(s) {
                        panic!("injected shard {s} scan fault");
                    }
                }
                db.scan_embeddings(&qrefs, fetch, &scan_query)
            }))
        };
        // `None` slots (skipped or failed shards) are absent from the
        // merge; shard order is preserved either way so results stay
        // thread-count independent.
        let mut per_shard: Vec<Option<Vec<Vec<Neighbor>>>> = vec![None; nshards];
        if scan_threads <= 1 || nshards == 1 {
            for (s, db) in self.shards.iter().enumerate() {
                if is_skipped(s) {
                    continue;
                }
                // Cooperative cancellation between shard scans: once the
                // latest member deadline passes, finishing the scan can
                // no longer help anyone.
                if expired(&guard.deadline) {
                    out.expired = true;
                    return Ok(out);
                }
                match scan(s, db) {
                    Ok(r) => per_shard[s] = Some(r?),
                    Err(payload) => {
                        out.failed.push(s);
                        out.first_panic.get_or_insert(payload);
                    }
                }
            }
        } else {
            // Scoped fan-out, rejoined in shard order. A panicking shard
            // scan is caught inside its own thread — captured, not
            // propagated.
            let scan = &scan;
            let joined = std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .shards
                    .iter()
                    .enumerate()
                    .map(|(s, db)| (!is_skipped(s)).then(|| scope.spawn(move || scan(s, db))))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.map(|h| h.join().expect("catch_unwind never panics")))
                    .collect::<Vec<_>>()
            });
            for (s, r) in joined.into_iter().enumerate() {
                match r {
                    None => {}
                    Some(Ok(r)) => per_shard[s] = Some(r?),
                    Some(Err(payload)) => {
                        out.failed.push(s);
                        out.first_panic.get_or_insert(payload);
                    }
                }
            }
        }

        let merged: Vec<Vec<Neighbor>> = (0..queries.len())
            .map(|qi| merge_shard_lists(&per_shard, qi, nshards, fetch))
            .collect();

        if expired(&guard.deadline) {
            out.expired = true;
            return Ok(out);
        }
        out.results = match spec.rerank_measure() {
            None => merged,
            Some(kind) => {
                let measure = kind.measure();
                merged
                    .into_iter()
                    .zip(queries)
                    .map(|(short, q)| self.rerank_global(short, q, &*measure, spec.k()))
                    .collect()
            }
        };
        Ok(out)
    }

    /// Re-ranks a merged global shortlist by the exact `measure` on
    /// grid-rescaled coordinates — the same comparator and truncation as
    /// the unsharded database's re-rank stage, applied once over the
    /// merged list.
    fn rerank_global(
        &self,
        short: Vec<Neighbor>,
        query: &Trajectory,
        measure: &dyn neutraj_measures::Measure,
        k: usize,
    ) -> Vec<Neighbor> {
        let grid = self.model().grid();
        let q = grid.rescale_trajectory(query);
        let mut out: Vec<Neighbor> = short
            .into_iter()
            .map(|n| Neighbor {
                index: n.index,
                dist: measure.dist(
                    q.points(),
                    grid.rescale_trajectory(
                        self.trajectory(n.index).expect("merged index in range"),
                    )
                    .points(),
                ),
            })
            .collect();
        out.sort_by(|a, b| {
            a.dist
                .partial_cmp(&b.dist)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.index.cmp(&b.index))
        });
        out.truncate(k);
        out
    }
}

/// Merges query `qi`'s per-shard top-`fetch` lists: map local indices to
/// global (`g = l·S + s`), sort under the scan's `(dist, index)` total
/// order, truncate. See the module docs for why this equals the unsharded
/// scan bit for bit in exact mode. `None` slots (quarantined or panicked
/// shards) contribute nothing — the merge over the remaining shards is
/// still exact for the sub-corpus they hold, which is what makes partial
/// answers well-defined.
fn merge_shard_lists(
    per_shard: &[Option<Vec<Vec<Neighbor>>>],
    qi: usize,
    nshards: usize,
    fetch: usize,
) -> Vec<Neighbor> {
    let mut all: Vec<Neighbor> = Vec::new();
    for (s, shard_lists) in per_shard.iter().enumerate() {
        let Some(shard_lists) = shard_lists else {
            continue;
        };
        all.extend(shard_lists[qi].iter().map(|n| Neighbor {
            index: n.index * nshards + s,
            dist: n.dist,
        }));
    }
    all.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.index.cmp(&b.index)));
    all.truncate(fetch);
    all
}
