//! The async similarity service: epoch-rotated snapshots, a coalescing
//! micro-batch scheduler, and a typed, panic-free request route.
//!
//! # Snapshot rotation
//!
//! The served corpus lives in an `Arc<Snapshot>` behind a mutex that
//! guards **only the pointer**: readers clone the `Arc` (nanoseconds) and
//! scan entirely outside any lock; writers build the next snapshot
//! copy-on-write off to the side and swap the pointer when done. Readers
//! therefore never block on insert *work* — a query admitted before a
//! swap finishes on the old snapshot, one admitted after sees the new
//! corpus, and nothing in between is observable (no torn reads). This is
//! the std-only equivalent of arc-swap's load/store protocol.
//!
//! # Adaptive micro-batching
//!
//! Single queries enter a coalescing queue. The scheduler dispatches a
//! batch when either `max_batch` requests are waiting or the *oldest*
//! request has waited `batch_deadline` — so an idle service answers a
//! lone query after at most one deadline, while a busy one fills batches
//! to the brim without ever consulting a clock twice. Batches group by
//! [`QuerySpec`] and ride the lockstep batched embed + blocked GEMM scan,
//! whose per-row arithmetic is batch-size-invariant — coalesced results
//! are bit-identical to issuing each query sequentially.

use crate::request::{QuerySpec, ServeError, ServeRequest, ServeResponse};
use crate::snapshot::{ShardConfig, Snapshot};
use neutraj_model::{DbError, NeuTrajModel, SimilarityDb};
use neutraj_obs::{names, Counter, Gauge, Histogram, Registry};
use neutraj_trajectory::Trajectory;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Service construction knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Round-robin shard count for the snapshot (see [`ShardConfig`]).
    pub nshards: usize,
    /// Dispatch a batch as soon as this many requests are queued.
    pub max_batch: usize,
    /// …or as soon as the oldest queued request has waited this long.
    pub batch_deadline: Duration,
    /// Scoped threads for the parallel per-shard scan (1 = sequential).
    pub scan_threads: usize,
    /// Threads for the bulk corpus embed at construction.
    pub build_threads: usize,
    /// Train a per-shard IVF index at construction when set.
    pub ann: Option<neutraj_model::AnnParams>,
    /// Build per-shard int8 views at construction when `true`.
    pub quantized: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            nshards: 1,
            max_batch: 32,
            batch_deadline: Duration::from_micros(200),
            scan_threads: 1,
            build_threads: 1,
            ann: None,
            quantized: false,
        }
    }
}

/// Instrument handles for the service route, resolved once (the request
/// path only touches atomics). Rejections share the database's
/// `neutraj_db_rejects_total` so one counter covers every boundary.
#[derive(Debug, Clone)]
struct ServeMetrics {
    requests_total: Counter,
    batches_total: Counter,
    batch_size: Histogram,
    queue_depth: Gauge,
    coalesce_seconds: Histogram,
    request_seconds: Histogram,
    snapshot_epoch: Gauge,
    rejects_total: Counter,
}

impl ServeMetrics {
    fn register(registry: &Registry) -> Self {
        Self {
            requests_total: registry.counter(names::SERVE_REQUESTS_TOTAL),
            batches_total: registry.counter(names::SERVE_BATCHES_TOTAL),
            batch_size: registry.histogram(names::SERVE_BATCH_SIZE),
            queue_depth: registry.gauge(names::SERVE_QUEUE_DEPTH),
            coalesce_seconds: registry.histogram(names::SERVE_COALESCE_SECONDS),
            request_seconds: registry.histogram(names::SERVE_REQUEST_SECONDS),
            snapshot_epoch: registry.gauge(names::SERVE_SNAPSHOT_EPOCH),
            rejects_total: registry.counter(names::DB_REJECTS_TOTAL),
        }
    }
}

/// One queued request plus its reply slot and arrival time.
struct Pending {
    req: ServeRequest,
    enqueued: Instant,
    reply: SyncSender<Result<ServeResponse, ServeError>>,
}

/// State shared between the front door, the scheduler thread, and
/// writers.
struct Shared {
    /// The mutex guards the *pointer*, never the scan — see module docs.
    snapshot: Mutex<Arc<Snapshot>>,
    /// Serializes writers so concurrent inserts compose instead of
    /// overwriting each other's snapshots.
    write_lock: Mutex<()>,
    queue: Mutex<VecDeque<Pending>>,
    notify: Condvar,
    shutdown: AtomicBool,
    max_batch: usize,
    batch_deadline: Duration,
    scan_threads: usize,
    metrics: Option<ServeMetrics>,
}

/// The async similarity service — see the module docs for the
/// architecture and `DESIGN.md` §13 for the proofs.
///
/// Dropping the service flushes the queue: queued requests are answered,
/// then the scheduler thread exits.
pub struct SimilarityService {
    shared: Arc<Shared>,
    worker: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for SimilarityService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimilarityService")
            .field("len", &self.len())
            .field("epoch", &self.epoch())
            .finish()
    }
}

impl SimilarityService {
    /// Builds the epoch-0 snapshot over `corpus` and starts the
    /// scheduler thread.
    pub fn new(
        model: NeuTrajModel,
        corpus: Vec<Trajectory>,
        cfg: &ServiceConfig,
    ) -> Result<Self, ServeError> {
        Self::build(model, corpus, cfg, None)
    }

    /// Like [`SimilarityService::new`], recording serving metrics into
    /// `registry` (`neutraj_serve_*`, plus rejections into
    /// `neutraj_db_rejects_total`).
    pub fn with_metrics(
        model: NeuTrajModel,
        corpus: Vec<Trajectory>,
        cfg: &ServiceConfig,
        registry: &Registry,
    ) -> Result<Self, ServeError> {
        Self::build(model, corpus, cfg, Some(ServeMetrics::register(registry)))
    }

    fn build(
        model: NeuTrajModel,
        corpus: Vec<Trajectory>,
        cfg: &ServiceConfig,
        metrics: Option<ServeMetrics>,
    ) -> Result<Self, ServeError> {
        if cfg.max_batch == 0 {
            return Err(ServeError::Db(DbError::InvalidConfig(
                "max_batch must be positive (a zero-size batch never dispatches)".into(),
            )));
        }
        let shard_cfg = ShardConfig {
            nshards: cfg.nshards,
            build_threads: cfg.build_threads,
            ann: cfg.ann.clone(),
            quantized: cfg.quantized,
        };
        let snapshot = Snapshot::build(&model, corpus, &shard_cfg)?;
        if let Some(m) = &metrics {
            m.snapshot_epoch.set(snapshot.epoch() as f64);
        }
        let shared = Arc::new(Shared {
            snapshot: Mutex::new(Arc::new(snapshot)),
            write_lock: Mutex::new(()),
            queue: Mutex::new(VecDeque::new()),
            notify: Condvar::new(),
            shutdown: AtomicBool::new(false),
            max_batch: cfg.max_batch,
            batch_deadline: cfg.batch_deadline,
            scan_threads: cfg.scan_threads,
            metrics,
        });
        let worker = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("neutraj-serve".into())
                .spawn(move || scheduler_loop(&shared))
                .expect("spawn scheduler thread")
        };
        Ok(Self {
            shared,
            worker: Some(worker),
        })
    }

    /// The snapshot currently served. Readers may hold it as long as
    /// they like; writers never mutate it.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.shared.snapshot.lock().expect("snapshot lock").clone()
    }

    /// Current corpus size.
    pub fn len(&self) -> usize {
        self.snapshot().len()
    }

    /// Returns `true` when the served corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.snapshot().is_empty()
    }

    /// Epoch of the snapshot currently served.
    pub fn epoch(&self) -> u64 {
        self.snapshot().epoch()
    }

    /// Enqueues one request and returns the channel its answer will
    /// arrive on — the open-loop entry point: the call never blocks on
    /// scan work. Invalid requests are answered (with a typed error)
    /// through the same channel without ever occupying the queue.
    pub fn submit(&self, req: ServeRequest) -> Receiver<Result<ServeResponse, ServeError>> {
        let (tx, rx) = sync_channel(1);
        if let Err(e) = self.admit(&req) {
            let _ = tx.try_send(Err(e));
            return rx;
        }
        let pending = Pending {
            req,
            enqueued: Instant::now(),
            reply: tx,
        };
        let depth = {
            let mut q = self.shared.queue.lock().expect("queue lock");
            q.push_back(pending);
            q.len()
        };
        if let Some(m) = &self.shared.metrics {
            m.queue_depth.set(depth as f64);
        }
        self.shared.notify.notify_all();
        rx
    }

    /// Submits and waits: the closed-loop entry point.
    pub fn query(&self, req: ServeRequest) -> Result<ServeResponse, ServeError> {
        self.submit(req).recv().map_err(|_| ServeError::Dropped)?
    }

    /// The admission check — every rejection is typed, counted, and
    /// never panics the service.
    fn admit(&self, req: &ServeRequest) -> Result<(), ServeError> {
        let verdict = (|| {
            if self.shared.shutdown.load(Ordering::Acquire) {
                return Err(ServeError::ShuttingDown);
            }
            req.spec.validate()?;
            req.trajectory
                .validate()
                .map_err(|reason| DbError::InvalidTrajectory {
                    id: req.trajectory.id,
                    reason,
                })?;
            // Configuration-vs-snapshot checks (quantized view / ANN
            // index actually built) — shards are uniform, shard 0 speaks
            // for all. Uses the un-instrumented scan seam so the
            // rejection is not double-counted below.
            let snapshot = self.snapshot();
            req.spec
                .with_query(|q| snapshot.shard(0).scan_embeddings(&[], 0, q).map(|_| ()))?;
            Ok(())
        })();
        if verdict.is_err() {
            if let Some(m) = &self.shared.metrics {
                m.rejects_total.inc();
            }
        }
        verdict
    }

    /// Inserts one trajectory and publishes the next snapshot; returns
    /// the new **global** index. In-flight readers keep the old snapshot
    /// until they next ask for one.
    pub fn insert(&self, t: Trajectory) -> Result<usize, ServeError> {
        let _writer = self.shared.write_lock.lock().expect("write lock");
        let current = self.snapshot();
        let idx = current.len();
        let next = current.inserted(std::slice::from_ref(&t))?;
        self.publish(next);
        Ok(idx)
    }

    /// Inserts many trajectories as one epoch step (all-or-nothing).
    pub fn insert_batch(&self, ts: Vec<Trajectory>) -> Result<(), ServeError> {
        let _writer = self.shared.write_lock.lock().expect("write lock");
        let next = self.snapshot().inserted(&ts)?;
        self.publish(next);
        Ok(())
    }

    /// The swap — the only instant the snapshot mutex is held by a
    /// writer, and it holds no other work.
    fn publish(&self, next: Snapshot) {
        let epoch = next.epoch();
        *self.shared.snapshot.lock().expect("snapshot lock") = Arc::new(next);
        if let Some(m) = &self.shared.metrics {
            m.snapshot_epoch.set(epoch as f64);
        }
    }
}

impl Drop for SimilarityService {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.notify.notify_all();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

/// The scheduler: coalesce → group → lockstep dispatch → reply.
fn scheduler_loop(shared: &Shared) {
    loop {
        let batch = {
            let mut q = shared.queue.lock().expect("queue lock");
            loop {
                let shutting_down = shared.shutdown.load(Ordering::Acquire);
                if let Some(front) = q.front() {
                    let deadline = front.enqueued + shared.batch_deadline;
                    let now = Instant::now();
                    if q.len() >= shared.max_batch || now >= deadline || shutting_down {
                        break;
                    }
                    let (guard, _) = shared
                        .notify
                        .wait_timeout(q, deadline - now)
                        .expect("queue lock");
                    q = guard;
                } else if shutting_down {
                    return;
                } else {
                    q = shared.notify.wait(q).expect("queue lock");
                }
            }
            let n = q.len().min(shared.max_batch);
            if let Some(m) = &shared.metrics {
                m.queue_depth.set((q.len() - n) as f64);
            }
            q.drain(..n).collect::<Vec<Pending>>()
        };
        dispatch(shared, batch);
    }
}

/// Runs one coalesced micro-batch: group members by spec, embed each
/// group in lockstep, scan shards, merge, reply.
fn dispatch(shared: &Shared, batch: Vec<Pending>) {
    let dispatched_at = Instant::now();
    if let Some(m) = &shared.metrics {
        m.batches_total.inc();
        m.batch_size.observe(batch.len() as f64);
        m.requests_total.add(batch.len() as u64);
        for p in &batch {
            m.coalesce_seconds
                .observe(dispatched_at.duration_since(p.enqueued).as_secs_f64());
        }
    }
    let snapshot = {
        shared.snapshot.lock().expect("snapshot lock").clone()
        // Lock released here: the whole scan runs against our Arc,
        // unaffected by any concurrent swap.
    };
    // Group by spec, preserving arrival order within each group.
    let mut groups: Vec<(QuerySpec, Vec<Pending>)> = Vec::new();
    for p in batch {
        match groups.iter_mut().find(|(s, _)| *s == p.req.spec) {
            Some((_, members)) => members.push(p),
            None => groups.push((p.req.spec, vec![p])),
        }
    }
    for (spec, members) in groups {
        let trajs: Vec<Trajectory> = members.iter().map(|p| p.req.trajectory.clone()).collect();
        match snapshot.search_batch(&trajs, &spec, shared.scan_threads) {
            Ok(results) => {
                for (p, neighbors) in members.into_iter().zip(results) {
                    respond(shared, &snapshot, p, Ok(neighbors));
                }
            }
            // A group-level rejection (raced with nothing — admission
            // already vetted each request) falls back to per-request
            // answers so one bad request cannot fail its batch peers.
            Err(_) => {
                for p in members {
                    let one = snapshot
                        .search(&p.req.trajectory, &spec)
                        .map_err(ServeError::from);
                    if one.is_err() {
                        if let Some(m) = &shared.metrics {
                            m.rejects_total.inc();
                        }
                    }
                    respond(shared, &snapshot, p, one);
                }
            }
        }
    }
}

/// Sends one reply (ignoring receivers the client abandoned) and records
/// the end-to-end latency.
fn respond(
    shared: &Shared,
    snapshot: &Snapshot,
    p: Pending,
    result: Result<Vec<neutraj_measures::Neighbor>, ServeError>,
) {
    let response = result.map(|neighbors| ServeResponse {
        id: p.req.id,
        neighbors,
        epoch: snapshot.epoch(),
    });
    let _ = p.reply.try_send(response);
    if let Some(m) = &shared.metrics {
        m.request_seconds
            .observe(p.enqueued.elapsed().as_secs_f64());
    }
}

/// A one-query-at-a-time reference implementation over the same
/// snapshot semantics — what the bench's unbatched baseline and the
/// bit-identity suite compare the coalesced service against. (It is the
/// service with `max_batch = 1` and no queue, minus the thread hop.)
pub fn sequential_reference(
    snapshot: &Snapshot,
    requests: &[ServeRequest],
) -> Vec<Result<Vec<neutraj_measures::Neighbor>, DbError>> {
    requests
        .iter()
        .map(|r| snapshot.search(&r.trajectory, &r.spec))
        .collect()
}

/// Convenience: a single-shard snapshot's shard is semantically an
/// unsharded [`SimilarityDb`] over the same corpus — exposed for tests
/// and benches that compare against the direct database path.
pub fn unsharded_db(snapshot: &Snapshot) -> Option<&SimilarityDb> {
    (snapshot.nshards() == 1).then(|| snapshot.shard(0))
}
