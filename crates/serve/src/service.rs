//! The async similarity service: epoch-rotated snapshots, a coalescing
//! micro-batch scheduler, and a typed, panic-free request route, hardened
//! against overload and shard failure.
//!
//! # Snapshot rotation
//!
//! The served corpus lives in an `Arc<Snapshot>` behind a mutex that
//! guards **only the pointer**: readers clone the `Arc` (nanoseconds) and
//! scan entirely outside any lock; writers build the next snapshot
//! copy-on-write off to the side and swap the pointer when done. Readers
//! therefore never block on insert *work* — a query admitted before a
//! swap finishes on the old snapshot, one admitted after sees the new
//! corpus, and nothing in between is observable (no torn reads). This is
//! the std-only equivalent of arc-swap's load/store protocol.
//!
//! # Adaptive micro-batching
//!
//! Single queries enter a coalescing queue. The scheduler dispatches a
//! batch when either `max_batch` requests are waiting or the *oldest*
//! request has waited `batch_deadline` — so an idle service answers a
//! lone query after at most one deadline, while a busy one fills batches
//! to the brim without ever consulting a clock twice. Batches group by
//! [`QuerySpec`] and ride the lockstep batched embed + blocked GEMM scan,
//! whose per-row arithmetic is batch-size-invariant — coalesced results
//! are bit-identical to issuing each query sequentially.
//!
//! # The overload and failure ladder
//!
//! Every failure path is typed, counted, and survivable (`DESIGN.md` §14
//! carries the invariants the chaos suite enforces):
//!
//! 1. **Bounded admission** — the queue holds at most `max_queue`
//!    requests; overflow is answered [`ServeError::Overloaded`] with a
//!    backlog-drain retry hint instead of growing without bound. A
//!    [`Priority::High`](crate::Priority) arrival may evict the newest
//!    queued normal-priority request (the shed ladder's bottom rung);
//!    both count into `neutraj_serve_shed_total`.
//! 2. **Deadlines** — a request's time budget is checked at dequeue
//!    (expired work is answered [`ServeError::DeadlineExceeded`] without
//!    burning a scan) and cooperatively between shard scans.
//! 3. **Graceful degradation** — when the queue depth at dispatch
//!    reaches the degrade watermark, exact-scan specs are downgraded to
//!    the snapshot's quantized (preferred) or IVF shortlist view when
//!    one is built; responses are tagged `degraded: true` and counted.
//! 4. **Panic isolation and quarantine** — shard scans run under
//!    `catch_unwind`; a panicking shard is quarantined with exponential
//!    backoff re-admission (one trial scan per backoff expiry, strikes
//!    reset on success) while the service keeps answering from healthy
//!    shards with responses tagged `partial: true`. Queue locks recover
//!    from poisoning, so a panic can never wedge admission or dispatch.

use crate::request::{Priority, QuerySpec, ServeError, ServeRequest, ServeResponse};
use crate::snapshot::{ScanFault, ScanGuard, ShardConfig, Snapshot};
use neutraj_model::{DbError, NeuTrajModel, SimilarityDb};
use neutraj_obs::{names, Counter, Gauge, Histogram, Registry};
use neutraj_trajectory::Trajectory;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Service construction knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Round-robin shard count for the snapshot (see [`ShardConfig`]).
    pub nshards: usize,
    /// Dispatch a batch as soon as this many requests are queued.
    pub max_batch: usize,
    /// …or as soon as the oldest queued request has waited this long.
    /// Must be nonzero (a zero deadline would spin the scheduler).
    pub batch_deadline: Duration,
    /// Scoped threads for the parallel per-shard scan (1 = sequential).
    pub scan_threads: usize,
    /// Threads for the bulk corpus embed at construction.
    pub build_threads: usize,
    /// Train a per-shard IVF index at construction when set.
    pub ann: Option<neutraj_model::AnnParams>,
    /// Build a per-shard HNSW graph index at construction when set.
    pub graph: Option<neutraj_model::HnswParams>,
    /// Build per-shard int8 views at construction when `true`.
    pub quantized: bool,
    /// Bounded admission: at most this many requests may wait in the
    /// coalescing queue; overflow is answered
    /// [`ServeError::Overloaded`]. Must be nonzero (use `usize::MAX`
    /// for an explicitly unbounded queue, e.g. as a bench baseline).
    pub max_queue: usize,
    /// Queue depth at dispatch beyond which exact-scan specs degrade to
    /// the quantized/ANN shortlist view when one is built (`0` = auto:
    /// half of `max_queue`).
    pub degrade_watermark: usize,
    /// Base quarantine backoff after a shard scan panics; doubles per
    /// consecutive strike (capped at 64×), halts at zero strikes.
    pub quarantine_backoff: Duration,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            nshards: 1,
            max_batch: 32,
            batch_deadline: Duration::from_micros(200),
            scan_threads: 1,
            build_threads: 1,
            ann: None,
            graph: None,
            quantized: false,
            max_queue: 1024,
            degrade_watermark: 0,
            quarantine_backoff: Duration::from_millis(100),
        }
    }
}

/// Instrument handles for the service route, resolved once (the request
/// path only touches atomics). Rejections share the database's
/// `neutraj_db_rejects_total` so one counter covers every boundary.
#[derive(Debug, Clone)]
struct ServeMetrics {
    requests_total: Counter,
    batches_total: Counter,
    batch_size: Histogram,
    queue_depth: Gauge,
    coalesce_seconds: Histogram,
    request_seconds: Histogram,
    snapshot_epoch: Gauge,
    rejects_total: Counter,
    shed_total: Counter,
    deadline_expired_total: Counter,
    degraded_total: Counter,
    shard_quarantined_total: Counter,
}

impl ServeMetrics {
    fn register(registry: &Registry) -> Self {
        Self {
            requests_total: registry.counter(names::SERVE_REQUESTS_TOTAL),
            batches_total: registry.counter(names::SERVE_BATCHES_TOTAL),
            batch_size: registry.histogram(names::SERVE_BATCH_SIZE),
            queue_depth: registry.gauge(names::SERVE_QUEUE_DEPTH),
            coalesce_seconds: registry.histogram(names::SERVE_COALESCE_SECONDS),
            request_seconds: registry.histogram(names::SERVE_REQUEST_SECONDS),
            snapshot_epoch: registry.gauge(names::SERVE_SNAPSHOT_EPOCH),
            rejects_total: registry.counter(names::DB_REJECTS_TOTAL),
            shed_total: registry.counter(names::SERVE_SHED_TOTAL),
            deadline_expired_total: registry.counter(names::SERVE_DEADLINE_EXPIRED_TOTAL),
            degraded_total: registry.counter(names::SERVE_DEGRADED_TOTAL),
            shard_quarantined_total: registry.counter(names::SERVE_SHARD_QUARANTINED_TOTAL),
        }
    }
}

/// Locks a mutex, recovering from poisoning: the protected state is a
/// queue of requests (or plain bookkeeping), every transition of which is
/// valid on its own, so a panic that poisoned the lock left consistent
/// data behind — recovery keeps the service answering instead of
/// cascading the panic into every thread that touches the lock.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One queued request plus its reply slot, arrival time, and absolute
/// deadline (resolved from the request's relative budget at submission).
struct Pending {
    req: ServeRequest,
    enqueued: Instant,
    deadline: Option<Instant>,
    reply: SyncSender<Result<ServeResponse, ServeError>>,
}

impl Pending {
    fn expired(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|d| now >= d)
    }
}

/// The two-lane coalescing queue: the high lane dispatches first, the
/// normal lane is protected from starvation by overdue promotion (see
/// [`form_batch`]) and is the shed target when admission overflows.
#[derive(Default)]
struct Lanes {
    high: VecDeque<Pending>,
    normal: VecDeque<Pending>,
}

impl Lanes {
    fn len(&self) -> usize {
        self.high.len() + self.normal.len()
    }

    fn push(&mut self, p: Pending) {
        match p.req.priority {
            Priority::High => self.high.push_back(p),
            Priority::Normal => self.normal.push_back(p),
        }
    }

    /// Arrival instant of the oldest queued request across both lanes —
    /// what the coalescing deadline is measured from.
    fn oldest(&self) -> Option<Instant> {
        match (self.high.front(), self.normal.front()) {
            (Some(h), Some(n)) => Some(h.enqueued.min(n.enqueued)),
            (Some(h), None) => Some(h.enqueued),
            (None, Some(n)) => Some(n.enqueued),
            (None, None) => None,
        }
    }
}

/// Per-shard failure bookkeeping for quarantine and re-admission.
#[derive(Debug, Clone, Copy, Default)]
struct ShardHealth {
    quarantined_until: Option<Instant>,
    strikes: u32,
}

/// State shared between the front door, the scheduler thread, and
/// writers.
struct Shared {
    /// The mutex guards the *pointer*, never the scan — see module docs.
    snapshot: Mutex<Arc<Snapshot>>,
    /// Serializes writers so concurrent inserts compose instead of
    /// overwriting each other's snapshots.
    write_lock: Mutex<()>,
    queue: Mutex<Lanes>,
    notify: Condvar,
    shutdown: AtomicBool,
    health: Mutex<Vec<ShardHealth>>,
    fault: Mutex<Option<Arc<ScanFault>>>,
    max_batch: usize,
    batch_deadline: Duration,
    scan_threads: usize,
    max_queue: usize,
    degrade_watermark: usize,
    quarantine_backoff: Duration,
    metrics: Option<ServeMetrics>,
}

impl Shared {
    fn count_shed(&self) {
        if let Some(m) = &self.metrics {
            m.shed_total.inc();
        }
    }

    fn count_deadline(&self) {
        if let Some(m) = &self.metrics {
            m.deadline_expired_total.inc();
        }
    }

    /// Backlog-drain estimate at queue depth `depth`: each `max_batch`
    /// slice needs at least one coalescing deadline to dispatch. A hint,
    /// not a promise — callers should treat it as a floor.
    fn retry_hint(&self, depth: usize) -> Duration {
        let batches = (depth / self.max_batch.max(1)) as u32 + 1;
        self.batch_deadline.saturating_mul(batches)
    }
}

/// The async similarity service — see the module docs for the
/// architecture and `DESIGN.md` §13–§14 for the proofs and the failure
/// ladder.
///
/// Dropping the service flushes the queue: queued requests are answered,
/// then the scheduler thread exits.
pub struct SimilarityService {
    shared: Arc<Shared>,
    worker: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for SimilarityService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimilarityService")
            .field("len", &self.len())
            .field("epoch", &self.epoch())
            .finish()
    }
}

impl SimilarityService {
    /// Builds the epoch-0 snapshot over `corpus` and starts the
    /// scheduler thread.
    pub fn new(
        model: NeuTrajModel,
        corpus: Vec<Trajectory>,
        cfg: &ServiceConfig,
    ) -> Result<Self, ServeError> {
        let snapshot = Snapshot::build(&model, corpus, &Self::shard_config(cfg))?;
        Self::build(snapshot, cfg, None)
    }

    /// Like [`SimilarityService::new`], recording serving metrics into
    /// `registry` (`neutraj_serve_*`, plus rejections into
    /// `neutraj_db_rejects_total`).
    pub fn with_metrics(
        model: NeuTrajModel,
        corpus: Vec<Trajectory>,
        cfg: &ServiceConfig,
        registry: &Registry,
    ) -> Result<Self, ServeError> {
        let metrics = ServeMetrics::register(registry);
        let snapshot = match Snapshot::build(&model, corpus, &Self::shard_config(cfg)) {
            Ok(s) => s,
            Err(e) => {
                metrics.rejects_total.inc();
                return Err(e.into());
            }
        };
        Self::build(snapshot, cfg, Some(metrics))
    }

    /// Starts a service around an already-built snapshot — the crash
    /// recovery entry point: pair with [`Snapshot::load`] to resume
    /// serving a persisted corpus at its saved epoch (the snapshot's own
    /// shard layout wins over `cfg`'s shard fields).
    pub fn from_snapshot(snapshot: Snapshot, cfg: &ServiceConfig) -> Result<Self, ServeError> {
        Self::build(snapshot, cfg, None)
    }

    /// [`SimilarityService::from_snapshot`] with metrics.
    pub fn from_snapshot_with_metrics(
        snapshot: Snapshot,
        cfg: &ServiceConfig,
        registry: &Registry,
    ) -> Result<Self, ServeError> {
        Self::build(snapshot, cfg, Some(ServeMetrics::register(registry)))
    }

    fn shard_config(cfg: &ServiceConfig) -> ShardConfig {
        ShardConfig {
            nshards: cfg.nshards,
            build_threads: cfg.build_threads,
            ann: cfg.ann.clone(),
            graph: cfg.graph,
            quantized: cfg.quantized,
        }
    }

    fn build(
        snapshot: Snapshot,
        cfg: &ServiceConfig,
        metrics: Option<ServeMetrics>,
    ) -> Result<Self, ServeError> {
        let invalid = |reason: &str| {
            if let Some(m) = &metrics {
                m.rejects_total.inc();
            }
            Err(ServeError::Db(DbError::InvalidConfig(reason.into())))
        };
        if cfg.max_batch == 0 {
            return invalid("max_batch must be positive (a zero-size batch never dispatches)");
        }
        if cfg.batch_deadline.is_zero() {
            return invalid(
                "batch_deadline must be positive (a zero deadline spins the scheduler)",
            );
        }
        if cfg.max_queue == 0 {
            return invalid(
                "max_queue must be positive (bounded admission needs room for at least \
                 one request; use usize::MAX for an unbounded queue)",
            );
        }
        if let Some(m) = &metrics {
            m.snapshot_epoch.set(snapshot.epoch() as f64);
        }
        let nshards = snapshot.nshards();
        let degrade_watermark = match cfg.degrade_watermark {
            0 => (cfg.max_queue / 2).max(1),
            w => w,
        };
        let shared = Arc::new(Shared {
            snapshot: Mutex::new(Arc::new(snapshot)),
            write_lock: Mutex::new(()),
            queue: Mutex::new(Lanes::default()),
            notify: Condvar::new(),
            shutdown: AtomicBool::new(false),
            health: Mutex::new(vec![ShardHealth::default(); nshards]),
            fault: Mutex::new(None),
            max_batch: cfg.max_batch,
            batch_deadline: cfg.batch_deadline,
            scan_threads: cfg.scan_threads,
            max_queue: cfg.max_queue,
            degrade_watermark,
            quarantine_backoff: cfg.quarantine_backoff,
            metrics,
        });
        let worker = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("neutraj-serve".into())
                .spawn(move || scheduler_loop(&shared))
                .expect("spawn scheduler thread")
        };
        Ok(Self {
            shared,
            worker: Some(worker),
        })
    }

    /// The snapshot currently served. Readers may hold it as long as
    /// they like; writers never mutate it.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        lock_recover(&self.shared.snapshot).clone()
    }

    /// Current corpus size.
    pub fn len(&self) -> usize {
        self.snapshot().len()
    }

    /// Returns `true` when the served corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.snapshot().is_empty()
    }

    /// Epoch of the snapshot currently served.
    pub fn epoch(&self) -> u64 {
        self.snapshot().epoch()
    }

    /// Persists the currently served snapshot through the sealed
    /// `NTFILE01` envelope (see [`Snapshot::save`]) — pair with
    /// [`Snapshot::load`] + [`SimilarityService::from_snapshot`] to
    /// recover after a crash or restart.
    pub fn save_snapshot<P: AsRef<std::path::Path>>(
        &self,
        path: P,
    ) -> Result<(), neutraj_model::PersistError> {
        self.snapshot().save(path)
    }

    /// Enqueues one request and returns the channel its answer will
    /// arrive on — the open-loop entry point: the call never blocks on
    /// scan work. Invalid requests are answered (with a typed error)
    /// through the same channel without ever occupying the queue, and
    /// when the bounded queue is full the request (or, for a
    /// high-priority arrival, the newest queued normal-priority request)
    /// is answered [`ServeError::Overloaded`] instead of growing the
    /// backlog.
    pub fn submit(&self, req: ServeRequest) -> Receiver<Result<ServeResponse, ServeError>> {
        let (tx, rx) = sync_channel(1);
        if let Err(e) = self.admit(&req) {
            let _ = tx.try_send(Err(e));
            return rx;
        }
        let enqueued = Instant::now();
        let pending = Pending {
            deadline: req.deadline.map(|budget| enqueued + budget),
            req,
            enqueued,
            reply: tx,
        };
        // Admission under the queue lock; sheds answered after release.
        let (depth, shed) = {
            let mut q = lock_recover(&self.shared.queue);
            if q.len() >= self.shared.max_queue {
                if pending.req.priority == Priority::High {
                    match q.normal.pop_back() {
                        // Make room: evict the newest normal request —
                        // the one that has invested the least wait.
                        Some(victim) => {
                            q.push(pending);
                            (q.len(), Some(victim))
                        }
                        None => (q.len(), Some(pending)),
                    }
                } else {
                    (q.len(), Some(pending))
                }
            } else {
                q.push(pending);
                (q.len(), None)
            }
        };
        if let Some(victim) = shed {
            self.shared.count_shed();
            let hint = self.shared.retry_hint(depth);
            let _ = victim.reply.try_send(Err(ServeError::Overloaded {
                retry_after_hint: hint,
            }));
        }
        if let Some(m) = &self.shared.metrics {
            m.queue_depth.set(depth as f64);
        }
        self.shared.notify.notify_all();
        rx
    }

    /// Submits and waits: the closed-loop entry point.
    pub fn query(&self, req: ServeRequest) -> Result<ServeResponse, ServeError> {
        self.submit(req).recv().map_err(|_| ServeError::Dropped)?
    }

    /// The admission check — every rejection is typed, counted, and
    /// never panics the service.
    fn admit(&self, req: &ServeRequest) -> Result<(), ServeError> {
        let verdict = (|| {
            if self.shared.shutdown.load(Ordering::Acquire) {
                return Err(ServeError::ShuttingDown);
            }
            req.spec.validate()?;
            req.trajectory
                .validate()
                .map_err(|reason| DbError::InvalidTrajectory {
                    id: req.trajectory.id,
                    reason,
                })?;
            // Configuration-vs-snapshot checks (quantized view / ANN /
            // graph index actually built) — shards are uniform, shard 0
            // speaks for all. Vets the *effective* spec so a graph
            // request the degrade ladder can answer through IVF is
            // admitted rather than bounced. Uses the un-instrumented
            // scan seam so the rejection is not double-counted below.
            let snapshot = self.snapshot();
            let (spec, _) = effective_spec(&snapshot, req.spec, false);
            spec.with_query(|q| snapshot.shard(0).scan_embeddings(&[], 0, q).map(|_| ()))?;
            Ok(())
        })();
        if verdict.is_err() {
            if let Some(m) = &self.shared.metrics {
                m.rejects_total.inc();
            }
        }
        verdict
    }

    /// Inserts one trajectory and publishes the next snapshot; returns
    /// the new **global** index. In-flight readers keep the old snapshot
    /// until they next ask for one.
    pub fn insert(&self, t: Trajectory) -> Result<usize, ServeError> {
        let _writer = lock_recover(&self.shared.write_lock);
        let current = self.snapshot();
        let idx = current.len();
        let next = current.inserted(std::slice::from_ref(&t))?;
        self.publish(next);
        Ok(idx)
    }

    /// Inserts many trajectories as one epoch step (all-or-nothing).
    pub fn insert_batch(&self, ts: Vec<Trajectory>) -> Result<(), ServeError> {
        let _writer = lock_recover(&self.shared.write_lock);
        let next = self.snapshot().inserted(&ts)?;
        self.publish(next);
        Ok(())
    }

    /// The swap — the only instant the snapshot mutex is held by a
    /// writer, and it holds no other work.
    fn publish(&self, next: Snapshot) {
        let epoch = next.epoch();
        *lock_recover(&self.shared.snapshot) = Arc::new(next);
        if let Some(m) = &self.shared.metrics {
            m.snapshot_epoch.set(epoch as f64);
        }
    }

    /// Shard indices currently under quarantine (chaos-test seam, also
    /// handy for health endpoints).
    pub fn quarantined_shards(&self) -> Vec<usize> {
        let now = Instant::now();
        lock_recover(&self.shared.health)
            .iter()
            .enumerate()
            .filter(|(_, h)| h.quarantined_until.is_some_and(|u| now < u))
            .map(|(s, _)| s)
            .collect()
    }

    /// Installs (or clears) a scan fault injector: called with the shard
    /// index before each shard scan, a `true` return panics that scan
    /// inside the isolation boundary. Test seam for the chaos suite.
    #[doc(hidden)]
    pub fn set_scan_fault(&self, fault: Option<Arc<ScanFaultHook>>) {
        *lock_recover(&self.shared.fault) = fault;
    }

    /// Deliberately poisons the queue mutex from a panicking thread —
    /// chaos-test seam proving the lock-recovery path keeps the service
    /// answering.
    #[doc(hidden)]
    pub fn poison_queue_for_test(&self) {
        let shared = Arc::clone(&self.shared);
        let _ = std::thread::spawn(move || {
            let _guard = shared.queue.lock().expect("queue lock");
            panic!("deliberate queue poison (chaos test)");
        })
        .join();
    }
}

/// Public alias of the scan fault injector signature (see
/// [`SimilarityService::set_scan_fault`]).
pub type ScanFaultHook = dyn Fn(usize) -> bool + Send + Sync;

impl Drop for SimilarityService {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.notify.notify_all();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

/// The scheduler: coalesce → purge expired → form batch → dispatch.
fn scheduler_loop(shared: &Shared) {
    loop {
        let (batch, pressure) = {
            let mut q = lock_recover(&shared.queue);
            loop {
                let shutting_down = shared.shutdown.load(Ordering::Acquire);
                purge_expired(shared, &mut q);
                if let Some(oldest) = q.oldest() {
                    let deadline = oldest + shared.batch_deadline;
                    let now = Instant::now();
                    if q.len() >= shared.max_batch || now >= deadline || shutting_down {
                        break;
                    }
                    q = shared
                        .notify
                        .wait_timeout(q, deadline - now)
                        .unwrap_or_else(PoisonError::into_inner)
                        .0;
                } else if shutting_down {
                    return;
                } else {
                    q = shared
                        .notify
                        .wait(q)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            }
            let pressure = q.len();
            let batch = form_batch(shared, &mut q);
            if let Some(m) = &shared.metrics {
                m.queue_depth.set(q.len() as f64);
            }
            (batch, pressure)
        };
        if !batch.is_empty() {
            dispatch(shared, batch, pressure);
        }
    }
}

/// Answers and removes every queued request whose deadline has already
/// passed — the "without burning a scan" half of the deadline contract.
fn purge_expired(shared: &Shared, q: &mut Lanes) {
    let now = Instant::now();
    for lane in [&mut q.high, &mut q.normal] {
        let mut i = 0;
        while i < lane.len() {
            if lane[i].expired(now) {
                let p = lane.remove(i).expect("index in range");
                shared.count_deadline();
                answer(shared, p, Err(ServeError::DeadlineExceeded));
            } else {
                i += 1;
            }
        }
    }
}

/// Drains up to `max_batch` requests: the high lane first, then the
/// normal lane — with anti-starvation promotion: when the oldest normal
/// request has waited past the promotion threshold (4× the coalescing
/// deadline), it ships in this batch ahead of the high lane, so a
/// sustained high-priority flood can delay normal work by at most a few
/// deadlines per batch, never indefinitely.
fn form_batch(shared: &Shared, q: &mut Lanes) -> Vec<Pending> {
    let now = Instant::now();
    let promote_after = shared.batch_deadline.saturating_mul(4);
    let mut batch = Vec::new();
    if q.normal
        .front()
        .is_some_and(|p| now.duration_since(p.enqueued) >= promote_after)
    {
        batch.push(q.normal.pop_front().expect("front exists"));
    }
    while batch.len() < shared.max_batch {
        if let Some(p) = q.high.pop_front() {
            batch.push(p);
        } else if let Some(p) = q.normal.pop_front() {
            batch.push(p);
        } else {
            break;
        }
    }
    batch
}

/// The degrade rungs of the overload/capability ladder. Two independent
/// rewrites, both tagged `degraded: true`:
///
/// 1. **Graph→IVF fallback** (pressure-independent): a graph spec
///    against a snapshot whose shards carry no HNSW index is answered
///    through the IVF shortlist when one is built — the request stays
///    servable instead of bouncing off a capability mismatch.
/// 2. **Overload downgrade**: under queue pressure an exact-scan spec
///    falls back to the snapshot's quantized view (preferred: exact
///    rerank keeps reported distances exact) or IVF shortlist when one
///    is built.
///
/// Returns the effective spec and whether it was downgraded.
fn effective_spec(snapshot: &Snapshot, spec: QuerySpec, pressured: bool) -> (QuerySpec, bool) {
    if spec.graph_ef().is_some() && !snapshot.has_graph() {
        if let Some(nlists) = snapshot.ann_nlists() {
            return (spec.graph_to_ann(nlists.div_ceil(2)), true);
        }
        return (spec, false);
    }
    if !pressured || !spec.is_exact_scan() {
        return (spec, false);
    }
    if snapshot.has_quantized() {
        return (spec.quantized(), true);
    }
    if let Some(nlists) = snapshot.ann_nlists() {
        return (spec.shortlist_ann(nlists.div_ceil(2)), true);
    }
    (spec, false)
}

/// Resolves the quarantine mask for this dispatch: quarantined shards
/// whose backoff has not expired are skipped; expired ones get a trial
/// scan (strikes persist until a success clears them).
fn quarantine_mask(shared: &Shared, nshards: usize, now: Instant) -> Vec<bool> {
    let mut health = lock_recover(&shared.health);
    health.resize(nshards, ShardHealth::default());
    health
        .iter_mut()
        .map(|h| match h.quarantined_until {
            Some(until) if now < until => true,
            Some(_) => {
                // Backoff expired: re-admit for one trial scan.
                h.quarantined_until = None;
                false
            }
            None => false,
        })
        .collect()
}

/// Folds one scan's outcome back into quarantine state: panicking shards
/// gain a strike and a doubled backoff window; shards that scanned
/// cleanly reset to zero strikes.
fn update_health(shared: &Shared, nshards: usize, skip: &[bool], failed: &[usize], now: Instant) {
    let mut health = lock_recover(&shared.health);
    health.resize(nshards, ShardHealth::default());
    for (s, h) in health.iter_mut().enumerate() {
        if failed.contains(&s) {
            h.strikes = (h.strikes + 1).min(7);
            let backoff = shared
                .quarantine_backoff
                .saturating_mul(1u32 << (h.strikes - 1).min(6));
            h.quarantined_until = Some(now + backoff);
            if let Some(m) = &shared.metrics {
                m.shard_quarantined_total.inc();
            }
        } else if !skip.get(s).copied().unwrap_or(false) && h.quarantined_until.is_none() {
            h.strikes = 0;
        }
    }
}

/// Runs one coalesced micro-batch: degrade under pressure, group members
/// by effective spec, embed each group in lockstep, scan healthy shards
/// under panic isolation, merge, reply.
fn dispatch(shared: &Shared, batch: Vec<Pending>, pressure: usize) {
    let dispatched_at = Instant::now();
    if let Some(m) = &shared.metrics {
        m.batches_total.inc();
        m.batch_size.observe(batch.len() as f64);
        m.requests_total.add(batch.len() as u64);
        for p in &batch {
            m.coalesce_seconds
                .observe(dispatched_at.duration_since(p.enqueued).as_secs_f64());
        }
    }
    let snapshot = {
        lock_recover(&shared.snapshot).clone()
        // Lock released here: the whole scan runs against our Arc,
        // unaffected by any concurrent swap.
    };
    let pressured = pressure >= shared.degrade_watermark;
    // Group by effective spec, preserving arrival order within each
    // group (the degrade rewrite is a pure function of the spec and the
    // snapshot, so equal input specs stay batch-compatible).
    let mut groups: Vec<(QuerySpec, bool, Vec<Pending>)> = Vec::new();
    for p in batch {
        let (spec, degraded) = effective_spec(&snapshot, p.req.spec, pressured);
        match groups.iter_mut().find(|(s, _, _)| *s == spec) {
            Some((_, _, members)) => members.push(p),
            None => groups.push((spec, degraded, vec![p])),
        }
    }
    let fault = lock_recover(&shared.fault).clone();
    for (spec, degraded, members) in groups {
        run_group(shared, &snapshot, spec, degraded, members, fault.as_deref());
    }
}

/// Scans one spec-group under the full guard set and answers its
/// members.
fn run_group(
    shared: &Shared,
    snapshot: &Snapshot,
    spec: QuerySpec,
    degraded: bool,
    members: Vec<Pending>,
    fault: Option<&ScanFault>,
) {
    let now = Instant::now();
    let nshards = snapshot.nshards();
    let skip = quarantine_mask(shared, nshards, now);
    // Cooperative cancellation aborts only once *no* member can still
    // use the result: the guard deadline is the latest member deadline,
    // and absent entirely when any member has no deadline.
    let group_deadline = if members.iter().any(|p| p.deadline.is_none()) {
        None
    } else {
        members.iter().filter_map(|p| p.deadline).max()
    };
    let trajs: Vec<Trajectory> = members.iter().map(|p| p.req.trajectory.clone()).collect();
    let guard = ScanGuard {
        deadline: group_deadline,
        skip: &skip,
        fault,
    };
    match snapshot.scan_batch_guarded(&trajs, &spec, shared.scan_threads, &guard) {
        Ok(scan) => {
            update_health(shared, nshards, &skip, &scan.failed, Instant::now());
            if scan.expired {
                for p in members {
                    shared.count_deadline();
                    answer(shared, p, Err(ServeError::DeadlineExceeded));
                }
                return;
            }
            let partial = scan.is_partial();
            let done = Instant::now();
            for (p, neighbors) in members.into_iter().zip(scan.results) {
                if p.expired(done) {
                    shared.count_deadline();
                    answer(shared, p, Err(ServeError::DeadlineExceeded));
                    continue;
                }
                if degraded {
                    if let Some(m) = &shared.metrics {
                        m.degraded_total.inc();
                    }
                }
                let resp = ServeResponse {
                    id: p.req.id,
                    neighbors,
                    epoch: snapshot.epoch(),
                    degraded,
                    partial,
                };
                answer(shared, p, Ok(resp));
            }
        }
        // A group-level rejection (raced with nothing — admission
        // already vetted each request) falls back to per-request
        // answers so one bad request cannot fail its batch peers. The
        // fallback stays inside the guarded scan so a panicking shard
        // still cannot take the scheduler down.
        Err(_) => {
            for p in members {
                let one = snapshot
                    .scan_batch_guarded(
                        std::slice::from_ref(&p.req.trajectory),
                        &spec,
                        1,
                        &ScanGuard {
                            deadline: p.deadline,
                            skip: &skip,
                            fault,
                        },
                    )
                    .map_err(ServeError::from);
                let result = match one {
                    Err(e) => {
                        if let Some(m) = &shared.metrics {
                            m.rejects_total.inc();
                        }
                        Err(e)
                    }
                    Ok(scan) if scan.expired => {
                        shared.count_deadline();
                        Err(ServeError::DeadlineExceeded)
                    }
                    Ok(mut scan) => Ok(ServeResponse {
                        id: p.req.id,
                        neighbors: scan.results.pop().unwrap_or_default(),
                        epoch: snapshot.epoch(),
                        degraded,
                        partial: scan.is_partial(),
                    }),
                };
                answer(shared, p, result);
            }
        }
    }
}

/// Sends one reply (ignoring receivers the client abandoned) and records
/// the end-to-end latency.
fn answer(shared: &Shared, p: Pending, result: Result<ServeResponse, ServeError>) {
    let _ = p.reply.try_send(result);
    if let Some(m) = &shared.metrics {
        m.request_seconds
            .observe(p.enqueued.elapsed().as_secs_f64());
    }
}

/// A one-query-at-a-time reference implementation over the same
/// snapshot semantics — what the bench's unbatched baseline and the
/// bit-identity suite compare the coalesced service against. (It is the
/// service with `max_batch = 1` and no queue, minus the thread hop.)
pub fn sequential_reference(
    snapshot: &Snapshot,
    requests: &[ServeRequest],
) -> Vec<Result<Vec<neutraj_measures::Neighbor>, DbError>> {
    requests
        .iter()
        .map(|r| snapshot.search(&r.trajectory, &r.spec))
        .collect()
}

/// Convenience: a single-shard snapshot's shard is semantically an
/// unsharded [`SimilarityDb`] over the same corpus — exposed for tests
/// and benches that compare against the direct database path.
pub fn unsharded_db(snapshot: &Snapshot) -> Option<&SimilarityDb> {
    (snapshot.nshards() == 1).then(|| snapshot.shard(0))
}
