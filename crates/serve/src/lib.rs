//! Async similarity serving for NeuTraj.
//!
//! This crate wraps [`neutraj_model::SimilarityDb`] in a service built
//! for concurrent callers:
//!
//! * **Lock-free read snapshots** — the corpus is an immutable
//!   [`Snapshot`] behind an `Arc`; writers build the next epoch
//!   copy-on-write and publish it with a pointer swap, so readers never
//!   block on insert work ([`snapshot`] module docs carry the protocol).
//! * **Sharded parallel scans** — a snapshot holds `S` round-robin
//!   [`SimilarityDb`](neutraj_model::SimilarityDb) partitions scanned
//!   independently and merged under the scan's `(dist, index)` total
//!   order; in exact mode the merge is bit-identical to the unsharded
//!   scan (the module docs carry the proof).
//! * **Adaptive micro-batching** — concurrent single queries coalesce in
//!   a deadline-bounded queue and dispatch through the lockstep batched
//!   embed + blocked-GEMM scan, bit-identical to answering each query
//!   alone ([`service`] module docs carry the scheduling policy).
//!
//! The typed surface ([`ServeRequest`] / [`ServeResponse`] /
//! [`ServeError`], with [`QuerySpec`] as the owned twin of the library's
//! `Query` builder) is shared by the service, the CLI, and library
//! callers, and the service route never panics on request input.
//!
//! The service is additionally **overload- and failure-hardened**
//! (`DESIGN.md` §14): bounded admission with typed
//! [`ServeError::Overloaded`] shedding, per-request deadlines with
//! cooperative cancellation, graceful degradation of exact scans to
//! quantized/ANN shortlist views under queue pressure, panic-isolated
//! shard scans with quarantine + backoff re-admission, and
//! crash-recoverable snapshots sealed through the checksummed `NTFILE01`
//! envelope ([`persist`] module docs carry the codec).
//!
//! ```no_run
//! use neutraj_serve::{QuerySpec, ServeRequest, ServiceConfig, SimilarityService};
//! # fn demo(model: neutraj_model::NeuTrajModel,
//! #         corpus: Vec<neutraj_trajectory::Trajectory>,
//! #         query: neutraj_trajectory::Trajectory) {
//! let service =
//!     SimilarityService::new(model, corpus, &ServiceConfig::default()).unwrap();
//! let answer = service
//!     .query(ServeRequest::new(0, query, QuerySpec::new(10)))
//!     .unwrap();
//! println!("top-10 at epoch {}: {:?}", answer.epoch, answer.neighbors);
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod persist;
pub mod request;
pub mod service;
pub mod snapshot;

pub use request::{Priority, QuerySpec, ServeError, ServeRequest, ServeResponse};
pub use service::{
    sequential_reference, unsharded_db, ScanFaultHook, ServiceConfig, SimilarityService,
};
pub use snapshot::{ShardConfig, Snapshot};
