//! End-to-end integration tests: the full paper pipeline (generate →
//! split → seed distances → train → embed → search) across crates.

use neutraj::eval::harness::{
    build_ap_for_world, default_threads, model_rankings, DatasetKind, ExperimentWorld, GroundTruth,
    WorldConfig,
};
use neutraj::prelude::*;

fn world(size: usize, seed: u64) -> ExperimentWorld {
    ExperimentWorld::build(WorldConfig {
        size,
        seed,
        ..WorldConfig::small(DatasetKind::PortoLike)
    })
}

fn hr10_of(world: &ExperimentWorld, kind: MeasureKind, cfg: TrainConfig, gt: &GroundTruth) -> f64 {
    let measure = kind.measure();
    let (model, _) = world.train(&*measure, cfg);
    let db = world.test_db();
    let rankings = model_rankings(&model, &db, &gt.queries, default_threads());
    gt.evaluate(&rankings).hr10
}

#[test]
fn neutraj_beats_chance_on_hausdorff() {
    let w = world(220, 31);
    let kind = MeasureKind::Hausdorff;
    let db_rescaled = w.test_db_rescaled();
    let queries = w.query_positions(12);
    let gt = GroundTruth::compute(&*kind.measure(), &db_rescaled, &queries, default_threads());

    let cfg = TrainConfig {
        dim: 24,
        epochs: 14,
        n_samples: 8,
        ..TrainConfig::neutraj()
    };
    let neutraj_hr = hr10_of(&w, kind, cfg, &gt);

    let chance = 10.0 / (db_rescaled.len() - 1) as f64;
    assert!(
        neutraj_hr > 2.0 * chance,
        "NeuTraj HR@10 {neutraj_hr:.3} not above chance {chance:.3}"
    );
}

/// The paper's headline claim (Table III) at toy scale. Quarantined
/// (`--ignored`) rather than active: at 220 trajectories / 14 epochs the
/// trained HR@10 sits near the AP baseline's, and which side wins varies
/// with the host's floating-point contraction (observed 0.42–0.65 across
/// machines for an AP of 0.61). The signal is real at paper scale but
/// this comparison is not a stable CI gate; the chance-floor test above
/// is the enforced invariant.
#[test]
#[ignore = "env-dependent: NeuTraj-vs-AP margin at toy scale is within cross-host FP noise"]
fn neutraj_beats_ap_on_hausdorff_at_scale() {
    let w = world(220, 31);
    let kind = MeasureKind::Hausdorff;
    let db_rescaled = w.test_db_rescaled();
    let queries = w.query_positions(12);
    let gt = GroundTruth::compute(&*kind.measure(), &db_rescaled, &queries, default_threads());

    let cfg = TrainConfig {
        dim: 24,
        epochs: 14,
        n_samples: 8,
        ..TrainConfig::neutraj()
    };
    let neutraj_hr = hr10_of(&w, kind, cfg, &gt);

    let ap = build_ap_for_world(kind, &db_rescaled, 31).expect("Hausdorff AP");
    let ap_rankings = neutraj::eval::harness::ap_rankings(ap.as_ref(), &db_rescaled, &queries);
    let ap_hr = gt.evaluate(&ap_rankings).hr10;
    assert!(
        neutraj_hr > ap_hr,
        "NeuTraj HR@10 {neutraj_hr:.3} did not beat AP {ap_hr:.3}"
    );
}

#[test]
fn pipeline_works_on_every_paper_measure() {
    let w = world(150, 17);
    let queries = w.query_positions(6);
    let db_rescaled = w.test_db_rescaled();
    let chance = 10.0 / (db_rescaled.len() - 1) as f64;
    for kind in MeasureKind::ALL {
        let gt = GroundTruth::compute(&*kind.measure(), &db_rescaled, &queries, default_threads());
        let cfg = TrainConfig {
            dim: 16,
            epochs: 6,
            n_samples: 5,
            ..TrainConfig::neutraj()
        };
        let hr = hr10_of(&w, kind, cfg, &gt);
        assert!(
            hr > 1.5 * chance,
            "{kind}: HR@10 {hr:.3} vs chance {chance:.3}"
        );
    }
}

#[test]
fn reranking_improves_or_preserves_top10_quality() {
    // The paper's protocol: re-rank the learned top-50 by exact distance.
    // δ of the re-ranked list (δ_R10) must be ≤ δ of the raw list (δ_H10).
    let w = world(200, 5);
    let kind = MeasureKind::Frechet;
    let db_rescaled = w.test_db_rescaled();
    let queries = w.query_positions(10);
    let gt = GroundTruth::compute(&*kind.measure(), &db_rescaled, &queries, default_threads());
    let cfg = TrainConfig {
        dim: 16,
        epochs: 6,
        ..TrainConfig::neutraj()
    };
    let measure = kind.measure();
    let (model, _) = w.train(&*measure, cfg);
    let db = w.test_db();
    let rankings = model_rankings(&model, &db, &queries, default_threads());
    let q = gt.evaluate(&rankings);
    assert!(
        q.delta_r10 <= q.delta_h10 + 1e-9,
        "re-ranked distortion {} worse than raw {}",
        q.delta_r10,
        q.delta_h10
    );
}

#[test]
fn siamese_trains_and_is_finite() {
    let w = world(120, 2);
    let measure = MeasureKind::Dtw.measure();
    let cfg = TrainConfig {
        dim: 12,
        epochs: 3,
        ..TrainConfig::siamese()
    };
    let (model, report) = w.train(&*measure, cfg);
    assert!(report.epoch_losses.iter().all(|l| l.is_finite()));
    let e = model.embed(&w.corpus[0]);
    assert!(e.iter().all(|v| v.is_finite()));
}

#[test]
fn index_assisted_search_agrees_with_full_search_at_large_radius() {
    use neutraj::index::{RTree, SpatialIndex};
    let w = world(150, 9);
    let db = w.test_db_rescaled();
    let tree = RTree::build(&db);
    // A radius covering everything makes pruned search == full search.
    let candidates = tree.candidates(&db[0], f64::INFINITY);
    assert_eq!(candidates.len(), db.len());
    let full = neutraj::measures::knn_scan(&Hausdorff, &db[0], &db, 10);
    let pruned = neutraj::measures::knn_query(&Hausdorff, &db[0], &db, &candidates, 10);
    assert_eq!(full, pruned);
}
