//! Property-based cross-crate tests: measure laws, index soundness and
//! serialization round-trips on arbitrary trajectories.

use neutraj::prelude::*;
use proptest::prelude::*;

/// Strategy: a finite trajectory with 1..=20 points in a ±100 box.
fn arb_traj(id: u64) -> impl Strategy<Value = Trajectory> {
    prop::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 1..=20).prop_map(move |pts| {
        Trajectory::new_unchecked(id, pts.into_iter().map(Point::from).collect())
    })
}

/// Strategy: a small corpus of 2..=12 trajectories with ≥ 2 points each.
fn arb_corpus() -> impl Strategy<Value = Vec<Trajectory>> {
    prop::collection::vec(
        prop::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 2..=15),
        2..=12,
    )
    .prop_map(|tss| {
        tss.into_iter()
            .enumerate()
            .map(|(i, pts)| {
                Trajectory::new_unchecked(i as u64, pts.into_iter().map(Point::from).collect())
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn measures_are_symmetric_and_zero_on_self(
        a in arb_traj(0),
        b in arb_traj(1),
    ) {
        for kind in MeasureKind::ALL {
            let m = kind.measure();
            let ab = m.dist(a.points(), b.points());
            let ba = m.dist(b.points(), a.points());
            prop_assert!((ab - ba).abs() < 1e-9, "{kind} not symmetric");
            prop_assert!(ab >= 0.0, "{kind} negative");
            let aa = m.dist(a.points(), a.points());
            prop_assert!(aa.abs() < 1e-9, "{kind} self-distance {aa}");
        }
    }

    #[test]
    fn metric_measures_satisfy_triangle_inequality(
        a in arb_traj(0),
        b in arb_traj(1),
        c in arb_traj(2),
    ) {
        for kind in [MeasureKind::Frechet, MeasureKind::Hausdorff, MeasureKind::Erp] {
            let m = kind.measure();
            let ab = m.dist(a.points(), b.points());
            let bc = m.dist(b.points(), c.points());
            let ac = m.dist(a.points(), c.points());
            prop_assert!(
                ac <= ab + bc + 1e-6,
                "{kind} triangle violated: {ac} > {ab} + {bc}"
            );
        }
    }

    #[test]
    fn frechet_upper_bounds_hausdorff(a in arb_traj(0), b in arb_traj(1)) {
        // Every Fréchet coupling is in particular a point matching, so
        // Hausdorff ≤ discrete Fréchet.
        let h = Hausdorff.dist(a.points(), b.points());
        let f = DiscreteFrechet.dist(a.points(), b.points());
        prop_assert!(h <= f + 1e-9, "Hausdorff {h} > Frechet {f}");
    }

    #[test]
    fn dtw_upper_bounds_length_scaled_frechet(a in arb_traj(0), b in arb_traj(1)) {
        // DTW sums ≥ its own max term ≥ ... at least the Fréchet value of
        // the best coupling: DTW ≥ Fréchet (min-sum ≥ min-max pathwise).
        let f = DiscreteFrechet.dist(a.points(), b.points());
        let d = Dtw.dist(a.points(), b.points());
        prop_assert!(d >= f - 1e-9, "DTW {d} < Frechet {f}");
    }

    #[test]
    fn csv_and_binary_roundtrip(corpus in arb_corpus()) {
        let ds = Dataset::new(corpus);
        let mut buf = Vec::new();
        neutraj::trajectory::io::write_csv(&ds, &mut buf).expect("write");
        let back = neutraj::trajectory::io::read_csv(&buf[..]).expect("read");
        prop_assert_eq!(&ds, &back);
        let bin = neutraj::trajectory::io::encode_binary(&ds);
        let back = neutraj::trajectory::io::decode_binary(&bin).expect("decode");
        prop_assert_eq!(ds, back);
    }

    #[test]
    fn rtree_candidates_superset_of_mbr_truth(corpus in arb_corpus(), radius in 0.0f64..150.0) {
        use neutraj::index::{RTree, SpatialIndex};
        let tree = RTree::build(&corpus);
        let q = &corpus[0];
        let cands = tree.candidates(q, radius);
        for (i, t) in corpus.iter().enumerate() {
            if t.mbr().min_dist_box(&q.mbr()) <= radius {
                prop_assert!(cands.contains(&i), "rtree lost candidate {i}");
            }
        }
    }

    #[test]
    fn inverted_index_never_loses_cell_sharers(corpus in arb_corpus()) {
        use neutraj::index::{GridInvertedIndex, SpatialIndex};
        let grid = Grid::covering(&corpus, 10.0).expect("non-empty");
        let idx = GridInvertedIndex::build(grid.clone(), &corpus);
        let q = &corpus[0];
        let cands = idx.candidates(q, 0.0);
        // Any trajectory sharing a cell with the query must be returned.
        let q_cells: std::collections::HashSet<_> =
            q.points().iter().map(|p| grid.cell_of(*p)).collect();
        for (i, t) in corpus.iter().enumerate() {
            let shares = t.points().iter().any(|p| q_cells.contains(&grid.cell_of(*p)));
            if shares {
                prop_assert!(cands.contains(&i), "inverted index lost {i}");
            }
        }
    }

    #[test]
    fn dbscan_labels_are_valid_partition(corpus in arb_corpus()) {
        use neutraj::cluster::{dbscan, DbscanParams, Label};
        let d = DistanceMatrix::compute(&Hausdorff, &corpus);
        let labels = dbscan(&d, DbscanParams { eps: 20.0, min_pts: 2 });
        prop_assert_eq!(labels.len(), corpus.len());
        // Cluster ids are contiguous from 0.
        let max = labels.iter().filter_map(|l| l.cluster()).max();
        if let Some(max) = max {
            for c in 0..=max {
                prop_assert!(
                    labels.iter().any(|l| l.cluster() == Some(c)),
                    "cluster id {c} skipped"
                );
            }
        }
        // Core-point property: every clustered point is within eps of its
        // cluster (reachability sanity, weak form).
        for (i, l) in labels.iter().enumerate() {
            if let Label::Cluster(c) = l {
                let near_same = (0..corpus.len()).any(|j| {
                    j != i && labels[j] == Label::Cluster(*c) && d.get(i, j) <= 20.0
                });
                let singleton = labels.iter().filter(|x| **x == Label::Cluster(*c)).count() == 1;
                prop_assert!(near_same || singleton, "stranded member {i}");
            }
        }
    }

    #[test]
    fn embedding_similarity_is_valid(a in arb_traj(0), b in arb_traj(1)) {
        // An untrained model must still produce a well-formed similarity.
        let grid = Grid::covering(&[a.clone(), b.clone()], 10.0).expect("non-empty");
        let cfg = TrainConfig { dim: 4, ..TrainConfig::neutraj() };
        let backbone = neutraj::model::Backbone::build(&cfg, &grid);
        let model = {
            // Build via a 1-epoch no-op train to obtain a NeuTrajModel.
            let seeds = vec![a.clone(), b.clone()];
            let rescaled: Vec<Trajectory> =
                seeds.iter().map(|t| grid.rescale_trajectory(t)).collect();
            let dist = DistanceMatrix::compute(&Hausdorff, &rescaled);
            let cfg = TrainConfig { dim: 4, epochs: 1, n_samples: 1, ..TrainConfig::neutraj() };
            Trainer::new(cfg, grid).fit(&seeds, &dist, |_| {}).0
        };
        drop(backbone);
        let g = model.similarity(&a, &b);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&g), "similarity {g} out of range");
        prop_assert!((model.similarity(&a, &a) - 1.0).abs() < 1e-9);
    }
}
